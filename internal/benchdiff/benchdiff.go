// Package benchdiff compares `go test -bench -benchmem` output against
// the committed BENCH_*.json baselines, so CI can catch performance
// regressions the functional tests cannot see.
//
// Two thresholds with very different trust levels:
//
//   - ns/op is machine-dependent (the baselines were recorded on one
//     host, CI runs on another), so the time gate is deliberately
//     loose — it exists to catch pathological regressions (an
//     accidentally quadratic loop, a lost cache), not percent drift.
//   - allocs/op is machine-independent: the same binary performs the
//     same allocations everywhere, so the alloc gate is tight. A small
//     absolute slack absorbs runtime-version noise on tiny counts.
package benchdiff

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Measurement is one parsed benchmark result line.
type Measurement struct {
	// Name is the benchmark name with the trailing -GOMAXPROCS suffix
	// stripped, so it matches baseline names recorded at any -cpu.
	Name        string
	Iters       int64
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
	// HasMem reports whether the line carried -benchmem columns.
	HasMem bool
}

// gomaxprocsSuffix matches the "-8" style suffix go test appends to
// benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` output and returns the benchmark
// measurements, ignoring all non-benchmark lines (ok/PASS/log noise).
func Parse(r io.Reader) ([]Measurement, error) {
	var out []Measurement
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "Benchmark..." prose, not a result line
		}
		m := Measurement{
			Name:  gomaxprocsSuffix.ReplaceAllString(fields[0], ""),
			Iters: iters,
		}
		// The rest of the line is (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
			case "B/op":
				m.BytesPerOp = v
				m.HasMem = true
			case "allocs/op":
				m.AllocsPerOp = v
				m.HasMem = true
			}
		}
		if m.NsPerOp > 0 {
			out = append(out, m)
		}
	}
	return out, sc.Err()
}

// BaselineEntry is one benchmark of a committed BENCH_*.json file.
// Extra keys (speedup, placements_per_s, ...) are ignored, so every
// baseline file whose "benchmarks" entries carry name/ns_per_op/
// allocs_per_op diffs with the same code path.
type BaselineEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type baselineFile struct {
	Benchmarks []BaselineEntry `json:"benchmarks"`
}

// LoadBaseline reads a BENCH_*.json file and indexes its benchmarks by
// name.
func LoadBaseline(path string) (map[string]BaselineEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no \"benchmarks\" array", path)
	}
	idx := make(map[string]BaselineEntry, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		idx[b.Name] = b
	}
	return idx, nil
}

// Thresholds configures the regression gates.
type Thresholds struct {
	// TimeFactor fails a benchmark whose ns/op exceeds baseline ×
	// this factor. Machine-dependent — keep it loose (CI uses 8).
	TimeFactor float64
	// AllocFactor fails a benchmark whose allocs/op exceed baseline ×
	// this factor plus AllocSlack. Machine-independent — keep it tight.
	AllocFactor float64
	// AllocSlack is the absolute allocs/op slack added on top of
	// AllocFactor, so a 15 → 17 move on a tiny count is noise but a
	// 15 → 40 move is a regression.
	AllocSlack float64
}

// DefaultThresholds are the CI gate settings.
func DefaultThresholds() Thresholds {
	return Thresholds{TimeFactor: 8, AllocFactor: 1.3, AllocSlack: 4}
}

// Finding is one benchmark's comparison against its baseline.
type Finding struct {
	Name        string
	Regressed   bool
	Reasons     []string // empty when within thresholds
	NsPerOp     float64
	BaseNs      float64
	AllocsPerOp float64
	BaseAllocs  float64
}

// Compare diffs measurements against the baseline index. Benchmarks
// without a baseline entry are skipped (they are new); matched is how
// many were compared.
func Compare(ms []Measurement, base map[string]BaselineEntry, th Thresholds) (findings []Finding, matched int) {
	for _, m := range ms {
		b, ok := base[m.Name]
		if !ok {
			continue
		}
		matched++
		f := Finding{
			Name: m.Name, NsPerOp: m.NsPerOp, BaseNs: b.NsPerOp,
			AllocsPerOp: m.AllocsPerOp, BaseAllocs: b.AllocsPerOp,
		}
		if th.TimeFactor > 0 && b.NsPerOp > 0 && m.NsPerOp > b.NsPerOp*th.TimeFactor {
			f.Regressed = true
			f.Reasons = append(f.Reasons, fmt.Sprintf(
				"time %.0f ns/op > %.1f× baseline %.0f", m.NsPerOp, th.TimeFactor, b.NsPerOp))
		}
		if th.AllocFactor > 0 && m.HasMem && b.AllocsPerOp > 0 &&
			m.AllocsPerOp > b.AllocsPerOp*th.AllocFactor+th.AllocSlack {
			f.Regressed = true
			f.Reasons = append(f.Reasons, fmt.Sprintf(
				"allocs %.0f/op > %.2f× baseline %.0f + %.0f", m.AllocsPerOp,
				th.AllocFactor, b.AllocsPerOp, th.AllocSlack))
		}
		findings = append(findings, f)
	}
	return findings, matched
}

// Report writes a human-readable comparison table and returns how many
// findings regressed.
func Report(w io.Writer, findings []Finding) int {
	regressed := 0
	for _, f := range findings {
		status := "ok"
		if f.Regressed {
			status = "REGRESSED"
			regressed++
		}
		fmt.Fprintf(w, "%-60s %12.0f ns/op (base %12.0f)  %6.0f allocs (base %6.0f)  %s\n",
			f.Name, f.NsPerOp, f.BaseNs, f.AllocsPerOp, f.BaseAllocs, status)
		for _, r := range f.Reasons {
			fmt.Fprintf(w, "    ^ %s\n", r)
		}
	}
	return regressed
}
