package benchdiff

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: gorder/internal/core
cpu: some CPU
BenchmarkOrderWith/web120k/w=1/hub=0-8         	       1	73771375 ns/op	  472752 B/op	      15 allocs/op
BenchmarkOrderWith/web120k/w=5/hub=0-8         	       2	91384687 ns/op	  472800 B/op	      16 allocs/op
BenchmarkNoMemColumns                          	     100	    123456 ns/op
--- BENCH: something
    helper_test.go:10: log line that mentions Benchmark inside
PASS
ok  	gorder/internal/core	2.345s
`

func TestParse(t *testing.T) {
	ms, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("parsed %d measurements, want 3: %+v", len(ms), ms)
	}
	m := ms[0]
	if m.Name != "BenchmarkOrderWith/web120k/w=1/hub=0" {
		t.Fatalf("name %q: GOMAXPROCS suffix not stripped", m.Name)
	}
	if m.Iters != 1 || m.NsPerOp != 73771375 || m.BytesPerOp != 472752 || m.AllocsPerOp != 15 {
		t.Fatalf("bad fields: %+v", m)
	}
	if !m.HasMem {
		t.Fatal("benchmem columns not detected")
	}
	if ms[2].HasMem {
		t.Fatal("no-mem line wrongly marked HasMem")
	}
}

func TestLoadBaselineAndCompare(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	baseline := `{
  "generated_by": "test",
  "benchmarks": [
    {"name": "BenchmarkOrderWith/web120k/w=1/hub=0", "iters": 1, "ns_per_op": 70000000, "bytes_per_op": 470000, "allocs_per_op": 15, "extra_key": null},
    {"name": "BenchmarkOrderWith/web120k/w=5/hub=0", "iters": 2, "ns_per_op": 1000, "bytes_per_op": 470000, "allocs_per_op": 3}
  ]
}`
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 2 {
		t.Fatalf("loaded %d entries, want 2", len(base))
	}

	ms, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	findings, matched := Compare(ms, base, DefaultThresholds())
	if matched != 2 {
		t.Fatalf("matched %d, want 2 (the no-baseline bench is skipped)", matched)
	}
	// First bench: 73.77ms vs 70ms baseline, 15 vs 15 allocs — fine.
	if findings[0].Regressed {
		t.Fatalf("finding 0 wrongly regressed: %+v", findings[0])
	}
	// Second bench: 91ms vs 1µs baseline (time blowout) and 16 vs 3
	// allocs (alloc blowout) — both gates must fire.
	if !findings[1].Regressed || len(findings[1].Reasons) != 2 {
		t.Fatalf("finding 1 should fail both gates: %+v", findings[1])
	}

	var sb strings.Builder
	if n := Report(&sb, findings); n != 1 {
		t.Fatalf("Report counted %d regressions, want 1", n)
	}
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Fatal("report missing REGRESSED marker")
	}
}

func TestCompareAllocSlackAbsorbsSmallMoves(t *testing.T) {
	base := map[string]BaselineEntry{
		"BenchmarkX": {Name: "BenchmarkX", NsPerOp: 1000, AllocsPerOp: 15},
	}
	th := DefaultThresholds()
	ms := []Measurement{{Name: "BenchmarkX", Iters: 1, NsPerOp: 1200, AllocsPerOp: 17, HasMem: true}}
	findings, _ := Compare(ms, base, th)
	if findings[0].Regressed {
		t.Fatalf("15 -> 17 allocs within slack, wrongly regressed: %+v", findings[0])
	}
	ms[0].AllocsPerOp = 40
	findings, _ = Compare(ms, base, th)
	if !findings[0].Regressed {
		t.Fatal("15 -> 40 allocs must regress")
	}
}

func TestLoadBaselineRejectsWrongShape(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"rows": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("baseline without benchmarks array must error")
	}
}
