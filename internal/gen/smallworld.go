package gen

import "gorder/internal/graph"

// WattsStrogatz generates a small-world graph: a ring lattice where
// every vertex links to its k nearest clockwise neighbours, with each
// link rewired to a uniform random target with probability beta.
// beta = 0 is a pure lattice (maximal locality in the original
// order), beta = 1 is essentially random — which makes the family a
// controlled dial for studying how much ordering methods can recover
// as intrinsic locality is destroyed.
func WattsStrogatz(n, k int, beta float64, seed uint64) *graph.Graph {
	if k < 1 {
		k = 1
	}
	if k >= n {
		k = n - 1
	}
	rng := NewRNG(seed)
	edges := make([]graph.Edge, 0, n*k)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			t := (v + j) % n
			if beta > 0 && rng.Float64() < beta {
				for {
					t = rng.Intn(n)
					if t != v {
						break
					}
				}
			}
			edges = append(edges, graph.Edge{From: uint32(v), To: uint32(t)})
		}
	}
	return graph.FromEdgesDedup(n, edges)
}

// KroneckerInitiator is the 2×2 seed matrix of probabilities for
// Kronecker.
type KroneckerInitiator [2][2]float64

// DefaultKronecker is a standard skew initiator producing power-law
// graphs (the stochastic Kronecker family R-MAT approximates).
var DefaultKronecker = KroneckerInitiator{{0.9, 0.5}, {0.5, 0.2}}

// Kronecker generates a stochastic Kronecker graph with 2^scale
// vertices: each of approximately edgeFactor·2^scale edge trials
// descends the Kronecker recursion, choosing quadrant (i,j) with
// probability proportional to initiator[i][j] at each of the scale
// levels. Self-loops are dropped and duplicates collapsed.
func Kronecker(scale, edgeFactor int, init KroneckerInitiator, seed uint64) *graph.Graph {
	n := 1 << uint(scale)
	m := edgeFactor * n
	total := init[0][0] + init[0][1] + init[1][0] + init[1][1]
	rng := NewRNG(seed)
	edges := make([]graph.Edge, 0, m)
	for e := 0; e < m; e++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			p := rng.Float64() * total
			switch {
			case p < init[0][0]:
				// (0,0): no bits
			case p < init[0][0]+init[0][1]:
				v |= 1 << uint(bit)
			case p < init[0][0]+init[0][1]+init[1][0]:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{From: uint32(u), To: uint32(v)})
	}
	return graph.FromEdgesDedup(n, edges)
}
