package gen

import (
	"math"
	"testing"
	"testing/quick"

	"gorder/internal/graph"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGUniformish(t *testing.T) {
	rng := NewRNG(7)
	buckets := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		buckets[rng.Intn(10)]++
	}
	for i, c := range buckets {
		if math.Abs(float64(c)-draws/10) > draws/10*0.1 {
			t.Errorf("bucket %d count %d deviates more than 10%%", i, c)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	rng := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := rng.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestPerm(t *testing.T) {
	rng := NewRNG(3)
	p := rng.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if seen[v] {
			t.Fatal("Perm repeated a value")
		}
		seen[v] = true
	}
}

func TestZipfSkew(t *testing.T) {
	rng := NewRNG(5)
	z := NewZipf(rng, 1000, 1.0)
	counts := make([]int, 1000)
	for i := 0; i < 50000; i++ {
		counts[z.Next()]++
	}
	if counts[0] < counts[500]*5 {
		t.Errorf("Zipf not skewed: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
}

func checkSimple(t *testing.T, g *graph.Graph, name string) {
	t.Helper()
	for u := 0; u < g.NumNodes(); u++ {
		adj := g.OutNeighbors(uint32(u))
		for i, v := range adj {
			if i > 0 && adj[i-1] == v {
				t.Fatalf("%s: duplicate edge (%d,%d)", name, u, v)
			}
			if int(v) >= g.NumNodes() {
				t.Fatalf("%s: edge endpoint out of range", name)
			}
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 300, 1)
	checkSimple(t, g, "ER")
	if g.NumNodes() != 100 {
		t.Errorf("n = %d", g.NumNodes())
	}
	if g.NumEdges() < 250 || g.NumEdges() > 300 {
		t.Errorf("m = %d, want roughly 300 (some dedup)", g.NumEdges())
	}
}

func TestBarabasiAlbertSkew(t *testing.T) {
	g := BarabasiAlbert(2000, 5, 2)
	checkSimple(t, g, "BA")
	s := graph.ComputeStats(g)
	if s.MaxInDegree < 20 {
		t.Errorf("BA max in-degree = %d; expected a hub", s.MaxInDegree)
	}
	if g.NumEdges() < 2000*5/2 {
		t.Errorf("BA too few edges: %d", g.NumEdges())
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 8, DefaultRMAT, 3)
	checkSimple(t, g, "RMAT")
	if g.NumNodes() != 1024 {
		t.Errorf("n = %d, want 1024", g.NumNodes())
	}
	s := graph.ComputeStats(g)
	if s.MaxInDegree < 3*int(s.AvgDegree) {
		t.Errorf("RMAT in-degree not skewed: max %d avg %.1f", s.MaxInDegree, s.AvgDegree)
	}
}

func TestWebLocality(t *testing.T) {
	g := Web(5000, DefaultWeb, 4)
	checkSimple(t, g, "Web")
	// A meaningful fraction of edges must be "local" in the original
	// numbering — that is the property the generator exists to model.
	local, total := 0, 0
	g.Edges(func(u, v uint32) bool {
		d := int64(u) - int64(v)
		if d < 0 {
			d = -d
		}
		if d <= int64(DefaultWeb.Locality) {
			local++
		}
		total++
		return true
	})
	if total == 0 || float64(local)/float64(total) < 0.10 {
		t.Errorf("web graph locality fraction %d/%d too low", local, total)
	}
	s := graph.ComputeStats(g)
	if s.MaxInDegree < 10*int(s.AvgDegree) {
		t.Errorf("web in-degree not heavy-tailed: max %d avg %.1f", s.MaxInDegree, s.AvgDegree)
	}
}

func TestSBMCommunityStructure(t *testing.T) {
	g := SBM(1000, 10, 8, 2, 5)
	checkSimple(t, g, "SBM")
	if g.NumEdges() < 1000*5 {
		t.Errorf("SBM too sparse: m = %d", g.NumEdges())
	}
}

func TestGrid(t *testing.T) {
	g := Grid(4, 5)
	checkSimple(t, g, "Grid")
	if g.NumNodes() != 20 {
		t.Errorf("n = %d", g.NumNodes())
	}
	// Interior vertex has 4 out-neighbours.
	if d := g.OutDegree(uint32(1*5 + 2)); d != 4 {
		t.Errorf("interior degree = %d, want 4", d)
	}
	// Corner has 2.
	if d := g.OutDegree(0); d != 2 {
		t.Errorf("corner degree = %d, want 2", d)
	}
}

func TestRing(t *testing.T) {
	g := Ring(5)
	for i := 0; i < 5; i++ {
		if !g.HasEdge(uint32(i), uint32((i+1)%5)) {
			t.Fatalf("ring missing edge %d->%d", i, (i+1)%5)
		}
	}
}

// All generators are deterministic in the seed.
func TestQuickGeneratorsDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		a := BarabasiAlbert(200, 3, seed)
		b := BarabasiAlbert(200, 3, seed)
		if !a.Equal(b) {
			return false
		}
		c := Web(200, DefaultWeb, seed)
		d := Web(200, DefaultWeb, seed)
		return c.Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
