package gen

import (
	"gorder/internal/graph"
)

// ErdosRenyi returns a directed G(n, m) graph: m edges drawn uniformly
// with replacement (parallel edges collapsed). Self-loops are excluded.
func ErdosRenyi(n, m int, seed uint64) *graph.Graph {
	rng := NewRNG(seed)
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{From: uint32(u), To: uint32(v)})
	}
	return graph.FromEdgesDedup(n, edges)
}

// BarabasiAlbert grows a directed preferential-attachment graph: each
// new vertex sends k edges to existing vertices chosen proportionally
// to their current total degree, modelling a social network with a
// heavy-tailed in-degree distribution. A fraction of reciprocal edges
// is added, as real social graphs are partially mutual.
func BarabasiAlbert(n, k int, seed uint64) *graph.Graph {
	if k < 1 {
		k = 1
	}
	if n < k+1 {
		panic("gen: BarabasiAlbert needs n > k")
	}
	rng := NewRNG(seed)
	// targets repeats each vertex once per incident edge, so sampling
	// uniformly from it is degree-proportional sampling.
	targets := make([]uint32, 0, 2*n*k)
	edges := make([]graph.Edge, 0, n*k)
	// Seed clique-ish core: k+1 vertices in a ring.
	for i := 0; i <= k; i++ {
		j := (i + 1) % (k + 1)
		edges = append(edges, graph.Edge{From: uint32(i), To: uint32(j)})
		targets = append(targets, uint32(i), uint32(j))
	}
	chosen := make([]uint32, 0, k)
	for v := k + 1; v < n; v++ {
		chosen = chosen[:0]
	pick:
		for len(chosen) < k {
			t := targets[rng.Intn(len(targets))]
			if int(t) == v {
				continue
			}
			for _, c := range chosen {
				if c == t {
					continue pick
				}
			}
			chosen = append(chosen, t)
		}
		for _, t := range chosen {
			edges = append(edges, graph.Edge{From: uint32(v), To: t})
			targets = append(targets, uint32(v), t)
			if rng.Float64() < 0.3 { // reciprocal follow-back
				edges = append(edges, graph.Edge{From: t, To: uint32(v)})
				targets = append(targets, t, uint32(v))
			}
		}
	}
	return graph.FromEdgesDedup(n, edges)
}

// RMATConfig parameterises the recursive-matrix generator. The
// defaults (0.57, 0.19, 0.19, 0.05) are the Graph500 parameters and
// produce power-law graphs similar to web/social crawls.
type RMATConfig struct {
	A, B, C float64 // quadrant probabilities; D = 1-A-B-C
}

// DefaultRMAT is the Graph500 parameterisation.
var DefaultRMAT = RMATConfig{A: 0.57, B: 0.19, C: 0.19}

// RMAT generates a directed R-MAT graph with 2^scale vertices and
// approximately edgeFactor * 2^scale edges (duplicates collapsed,
// self-loops dropped).
func RMAT(scale, edgeFactor int, cfg RMATConfig, seed uint64) *graph.Graph {
	n := 1 << uint(scale)
	m := edgeFactor * n
	rng := NewRNG(seed)
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			p := rng.Float64()
			switch {
			case p < cfg.A:
				// top-left: no bits set
			case p < cfg.A+cfg.B:
				v |= 1 << uint(bit)
			case p < cfg.A+cfg.B+cfg.C:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{From: uint32(u), To: uint32(v)})
	}
	return graph.FromEdgesDedup(n, edges)
}

// WebConfig parameterises the copying-model web graph.
type WebConfig struct {
	OutDegree int     // mean links per page
	PCopy     float64 // probability a link copies a prototype's target
	Locality  int     // window of nearby pages for local links
	PLocal    float64 // share of non-copied links that stay local
}

// DefaultWeb mirrors hyperlink-graph structure: most links are copied
// (creating hubs/authorities) and a moderate share point to
// lexicographic neighbours, because consecutive URLs on a site link
// to each other. The parameters are tuned so the original crawl order
// has clear but not overwhelming locality, as both papers observe in
// real web datasets (Original beats Random handily yet loses to a
// computed ordering).
var DefaultWeb = WebConfig{OutDegree: 12, PCopy: 0.55, Locality: 32, PLocal: 0.3}

// Web generates a directed web-style graph of n pages in "crawl
// order". The copying model yields a power-law in-degree
// distribution; link direction is mixed (pages link forward and
// backward in crawl order, as real sites do); and the locality links
// make the *original* vertex order already cache-friendly.
func Web(n int, cfg WebConfig, seed uint64) *graph.Graph {
	if cfg.OutDegree < 1 {
		cfg.OutDegree = 1
	}
	if cfg.Locality < 1 {
		cfg.Locality = 1
	}
	if cfg.PLocal == 0 {
		cfg.PLocal = 0.3
	}
	rng := NewRNG(seed)
	edges := make([]graph.Edge, 0, n*cfg.OutDegree)
	links := make([][]uint32, n) // targets of each page, for copying
	for v := 1; v < n; v++ {
		deg := 1 + rng.Intn(2*cfg.OutDegree-1) // mean ≈ OutDegree
		proto := rng.Intn(v)
		for j := 0; j < deg; j++ {
			var t int
			switch {
			case rng.Float64() < cfg.PCopy && len(links[proto]) > 0:
				t = int(links[proto][rng.Intn(len(links[proto]))])
			case rng.Float64() < cfg.PLocal:
				// Local link to a nearby earlier page.
				w := cfg.Locality
				if w > v {
					w = v
				}
				t = v - 1 - rng.Intn(w)
			default:
				t = rng.Intn(v)
			}
			if t == v {
				continue
			}
			// Pages link both forward and backward in crawl order.
			if rng.Float64() < 0.5 {
				edges = append(edges, graph.Edge{From: uint32(v), To: uint32(t)})
			} else {
				edges = append(edges, graph.Edge{From: uint32(t), To: uint32(v)})
			}
			links[v] = append(links[v], uint32(t))
		}
	}
	return graph.FromEdgesDedup(n, edges)
}

// SBM generates a stochastic-block-model graph: n vertices split into
// blocks communities, with expected within-block degree degIn and
// cross-block degree degOut per vertex. Vertex IDs are assigned in
// shuffled order so community structure is *not* reflected in the
// default numbering (unlike Web).
func SBM(n, blocks int, degIn, degOut float64, seed uint64) *graph.Graph {
	if blocks < 1 {
		blocks = 1
	}
	rng := NewRNG(seed)
	community := make([]int, n)
	for i := range community {
		community[i] = rng.Intn(blocks)
	}
	members := make([][]uint32, blocks)
	for i, c := range community {
		members[c] = append(members[c], uint32(i))
	}
	edges := make([]graph.Edge, 0, int(float64(n)*(degIn+degOut)))
	for u := 0; u < n; u++ {
		c := community[u]
		din := poissonish(rng, degIn)
		for j := 0; j < din && len(members[c]) > 1; j++ {
			v := members[c][rng.Intn(len(members[c]))]
			if int(v) != u {
				edges = append(edges, graph.Edge{From: uint32(u), To: v})
			}
		}
		dout := poissonish(rng, degOut)
		for j := 0; j < dout; j++ {
			v := rng.Intn(n)
			if v != u && community[v] != c {
				edges = append(edges, graph.Edge{From: uint32(u), To: uint32(v)})
			}
		}
	}
	return graph.FromEdgesDedup(n, edges)
}

// poissonish draws a cheap integer approximation of Poisson(mean):
// floor(mean) plus a Bernoulli for the fractional part, then ±1 noise.
func poissonish(rng *RNG, mean float64) int {
	base := int(mean)
	if rng.Float64() < mean-float64(base) {
		base++
	}
	switch rng.Intn(4) {
	case 0:
		base++
	case 1:
		if base > 0 {
			base--
		}
	}
	return base
}

// Grid returns a rows×cols 4-neighbour mesh with edges in both
// directions. Meshes have known-optimal bandwidth behaviour, which the
// RCM tests rely on.
func Grid(rows, cols int) *graph.Graph {
	n := rows * cols
	var edges []graph.Edge
	at := func(r, c int) uint32 { return uint32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{From: at(r, c), To: at(r, c+1)},
					graph.Edge{From: at(r, c+1), To: at(r, c)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{From: at(r, c), To: at(r+1, c)},
					graph.Edge{From: at(r+1, c), To: at(r, c)})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// Ring returns a directed cycle on n vertices.
func Ring(n int) *graph.Graph {
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{From: uint32(i), To: uint32((i + 1) % n)}
	}
	return graph.FromEdges(n, edges)
}
