package gen

import (
	"testing"

	"gorder/internal/graph"
)

func TestWattsStrogatzLattice(t *testing.T) {
	// beta = 0: pure ring lattice, every vertex links to the next k.
	g := WattsStrogatz(20, 3, 0, 1)
	for v := 0; v < 20; v++ {
		for j := 1; j <= 3; j++ {
			if !g.HasEdge(uint32(v), uint32((v+j)%20)) {
				t.Fatalf("lattice missing edge %d -> %d", v, (v+j)%20)
			}
		}
	}
	if g.NumEdges() != 60 {
		t.Fatalf("m = %d, want 60", g.NumEdges())
	}
}

func TestWattsStrogatzRewiring(t *testing.T) {
	lattice := WattsStrogatz(500, 4, 0, 2)
	rewired := WattsStrogatz(500, 4, 0.5, 2)
	// Rewiring must break a substantial share of lattice edges.
	broken := 0
	lattice.Edges(func(u, v graph.NodeID) bool {
		if !rewired.HasEdge(u, v) {
			broken++
		}
		return true
	})
	if broken < 300 { // expect ≈ half of 2000
		t.Errorf("only %d lattice edges rewired at beta=0.5", broken)
	}
	// No self-loops ever.
	s := graph.ComputeStats(rewired)
	if s.SelfLoops != 0 {
		t.Errorf("rewired graph has %d self-loops", s.SelfLoops)
	}
}

func TestWattsStrogatzDeterministic(t *testing.T) {
	if !WattsStrogatz(200, 3, 0.3, 7).Equal(WattsStrogatz(200, 3, 0.3, 7)) {
		t.Fatal("not deterministic in seed")
	}
}

func TestWattsStrogatzLocalityDial(t *testing.T) {
	// The point of the family: original-order locality degrades
	// monotonically-ish with beta.
	localShare := func(beta float64) float64 {
		g := WattsStrogatz(2000, 4, beta, 5)
		local, total := 0, 0
		g.Edges(func(u, v graph.NodeID) bool {
			d := int(u) - int(v)
			if d < 0 {
				d = -d
			}
			if d <= 8 || d >= 1992 { // ring wrap
				local++
			}
			total++
			return true
		})
		return float64(local) / float64(total)
	}
	l0, l5, l10 := localShare(0), localShare(0.5), localShare(1.0)
	if !(l0 > l5 && l5 > l10) {
		t.Errorf("locality not decreasing with beta: %v %v %v", l0, l5, l10)
	}
	if l0 < 0.99 {
		t.Errorf("pure lattice locality = %v, want ≈1", l0)
	}
}

func TestKronecker(t *testing.T) {
	g := Kronecker(10, 8, DefaultKronecker, 3)
	if g.NumNodes() != 1024 {
		t.Fatalf("n = %d, want 1024", g.NumNodes())
	}
	s := graph.ComputeStats(g)
	if s.SelfLoops != 0 {
		t.Errorf("self-loops present: %d", s.SelfLoops)
	}
	// Skewed initiator → heavy-tailed degrees.
	if s.MaxInDegree < 4*int(s.AvgDegree) {
		t.Errorf("Kronecker not skewed: max in %d avg %.1f", s.MaxInDegree, s.AvgDegree)
	}
	if !g.Equal(Kronecker(10, 8, DefaultKronecker, 3)) {
		t.Fatal("not deterministic")
	}
}

func TestKroneckerUniformInitiator(t *testing.T) {
	// A flat initiator degenerates to (roughly) uniform random edges.
	flat := KroneckerInitiator{{1, 1}, {1, 1}}
	g := Kronecker(8, 8, flat, 9)
	s := graph.ComputeStats(g)
	if s.MaxInDegree > 8*int(s.AvgDegree) {
		t.Errorf("flat initiator produced a hub: max in %d avg %.1f", s.MaxInDegree, s.AvgDegree)
	}
}
