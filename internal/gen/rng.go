// Package gen generates the synthetic benchmark graphs that stand in
// for the paper's real-world datasets (see DESIGN.md §4): social-style
// graphs with skewed degree distributions (Barabási–Albert, R-MAT,
// stochastic block model) and web-style graphs whose default vertex
// numbering already has locality (copying model), plus regular meshes
// used to sanity-check bandwidth-reducing orderings.
//
// All generators are deterministic in their seed and independent of
// the Go runtime's rand implementation: they use a self-contained
// xoshiro256** generator seeded through splitmix64.
package gen

import "math"

// RNG is a deterministic xoshiro256** pseudo-random generator. The
// zero value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed via splitmix64,
// which guarantees a well-mixed nonzero state for any seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("gen: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // modulo bias negligible for n << 2^64
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Shuffle permutes the first n indices using swap, Fisher–Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Perm returns a random permutation of 0..n-1 as uint32 values.
func (r *RNG) Perm(n int) []uint32 {
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s using inverse-CDF over a precomputed table. It models the
// skewed popularity that real social/web graphs exhibit.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s > 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("gen: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next returns the next sample.
func (z *Zipf) Next() int {
	x := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
