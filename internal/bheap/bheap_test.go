package bheap

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestMinOrder(t *testing.T) {
	h := Min(10)
	keys := []int64{5, 3, 8, 1, 9, 2, 7, 0, 6, 4}
	for i, k := range keys {
		h.Push(i, k)
	}
	var got []int64
	for h.Len() > 0 {
		_, k := h.Pop()
		got = append(got, k)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("min heap popped out of order: %v", got)
		}
	}
}

func TestMaxOrder(t *testing.T) {
	h := Max(5)
	for i, k := range []int64{2, 9, 4, 7, 1} {
		h.Push(i, k)
	}
	item, key := h.Pop()
	if item != 1 || key != 9 {
		t.Fatalf("Pop = (%d, %d), want (1, 9)", item, key)
	}
}

func TestUpdate(t *testing.T) {
	h := Min(4)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	h.Update(2, 5)
	if item, key := h.Peek(); item != 2 || key != 5 {
		t.Fatalf("Peek after decrease = (%d, %d), want (2, 5)", item, key)
	}
	h.Update(2, 100)
	if item, _ := h.Peek(); item != 0 {
		t.Fatalf("Peek after increase = item %d, want 0", item)
	}
}

func TestRemove(t *testing.T) {
	h := Min(5)
	for i := 0; i < 5; i++ {
		h.Push(i, int64(i))
	}
	h.Remove(0)
	h.Remove(3)
	if h.Contains(0) || h.Contains(3) {
		t.Fatal("removed items still reported present")
	}
	var got []int
	for h.Len() > 0 {
		it, _ := h.Pop()
		got = append(got, it)
	}
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("remaining = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("remaining = %v, want %v", got, want)
		}
	}
}

func TestPanics(t *testing.T) {
	h := Min(2)
	h.Push(0, 1)
	mustPanic(t, "double push", func() { h.Push(0, 2) })
	mustPanic(t, "update absent", func() { h.Update(1, 3) })
	mustPanic(t, "remove absent", func() { h.Remove(1) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// TestQuickAgainstSort runs random operation sequences and checks the
// heap against a sorted reference.
func TestQuickAgainstSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		h := Min(n)
		ref := make(map[int]int64)
		for op := 0; op < 500; op++ {
			item := rng.Intn(n)
			switch rng.Intn(4) {
			case 0:
				if !h.Contains(item) {
					k := int64(rng.Intn(1000))
					h.Push(item, k)
					ref[item] = k
				}
			case 1:
				if h.Contains(item) {
					k := int64(rng.Intn(1000))
					h.Update(item, k)
					ref[item] = k
				}
			case 2:
				if h.Contains(item) {
					h.Remove(item)
					delete(ref, item)
				}
			case 3:
				if h.Len() > 0 {
					it, k := h.Pop()
					if ref[it] != k {
						return false
					}
					// Popped key must be the minimum.
					for _, rk := range ref {
						if rk < k {
							return false
						}
					}
					delete(ref, it)
				}
			}
			if h.Len() != len(ref) {
				return false
			}
		}
		// Drain and verify full ordering.
		var drained []int64
		for h.Len() > 0 {
			_, k := h.Pop()
			drained = append(drained, k)
		}
		if !slices.IsSorted(drained) {
			return false
		}
		return len(drained) == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
