// Package bheap implements an indexed binary heap over the items
// 0..n-1, supporting O(log n) insert, extract and arbitrary key updates
// by item index. It backs the Kcore peeling and greedy dominating-set
// kernels, mirroring the binary-heap structure the paper uses for core
// decomposition.
package bheap

// Heap is an indexed binary heap. Items are dense integers 0..n-1;
// each item has an int64 key. Less decides the heap order (min-heap
// with <, max-heap with >). The zero value is not usable; call New.
type Heap struct {
	keys []int64 // key per item
	heap []int32 // heap[i] = item at heap position i
	pos  []int32 // pos[item] = heap position, -1 if absent
	less func(a, b int64) bool
}

// Min returns an ascending-order heap for n items.
func Min(n int) *Heap { return New(n, func(a, b int64) bool { return a < b }) }

// Max returns a descending-order heap for n items.
func Max(n int) *Heap { return New(n, func(a, b int64) bool { return a > b }) }

// New returns an empty heap able to hold items 0..n-1 ordered by less.
func New(n int, less func(a, b int64) bool) *Heap {
	h := &Heap{
		keys: make([]int64, n),
		heap: make([]int32, 0, n),
		pos:  make([]int32, n),
		less: less,
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len returns the number of items currently in the heap.
func (h *Heap) Len() int { return len(h.heap) }

// Contains reports whether item is currently in the heap.
func (h *Heap) Contains(item int) bool { return h.pos[item] >= 0 }

// Key returns the key most recently assigned to item. It is valid even
// after the item has been popped.
func (h *Heap) Key(item int) int64 { return h.keys[item] }

// Push inserts item with the given key. It panics if item is already
// present.
func (h *Heap) Push(item int, key int64) {
	if h.pos[item] >= 0 {
		panic("bheap: Push of item already in heap")
	}
	h.keys[item] = key
	h.pos[item] = int32(len(h.heap))
	h.heap = append(h.heap, int32(item))
	h.up(len(h.heap) - 1)
}

// Peek returns the top item and its key without removing it. It panics
// on an empty heap.
func (h *Heap) Peek() (item int, key int64) {
	it := h.heap[0]
	return int(it), h.keys[it]
}

// Pop removes and returns the top item and its key. It panics on an
// empty heap.
func (h *Heap) Pop() (item int, key int64) {
	it := h.heap[0]
	h.swap(0, len(h.heap)-1)
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[it] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return int(it), h.keys[it]
}

// Update changes the key of an item already in the heap and restores
// heap order. It panics if the item is absent.
func (h *Heap) Update(item int, key int64) {
	p := h.pos[item]
	if p < 0 {
		panic("bheap: Update of item not in heap")
	}
	old := h.keys[item]
	h.keys[item] = key
	switch {
	case h.less(key, old):
		h.up(int(p))
	case h.less(old, key):
		h.down(int(p))
	}
}

// Remove deletes an arbitrary item from the heap. It panics if the
// item is absent.
func (h *Heap) Remove(item int) {
	p := int(h.pos[item])
	if p < 0 {
		panic("bheap: Remove of item not in heap")
	}
	last := len(h.heap) - 1
	h.swap(p, last)
	h.heap = h.heap[:last]
	h.pos[item] = -1
	if p < last {
		h.down(p)
		h.up(p)
	}
}

func (h *Heap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.keys[h.heap[i]], h.keys[h.heap[parent]]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(h.keys[h.heap[l]], h.keys[h.heap[best]]) {
			best = l
		}
		if r < n && h.less(h.keys[h.heap[r]], h.keys[h.heap[best]]) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}
