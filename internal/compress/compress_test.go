package compress

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gorder/internal/core"
	"gorder/internal/gen"
	"gorder/internal/graph"
	"gorder/internal/order"
)

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag round trip %d → %d", v, got)
		}
	}
}

func TestEncodeDecodeSmall(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 3}, {From: 2, To: 0}, {From: 3, To: 3},
	})
	data := Encode(g)
	h, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("round trip changed the graph")
	}
	if int64(len(data)) != EncodedSize(g) {
		t.Fatalf("EncodedSize %d != len(Encode) %d", EncodedSize(g), len(data))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{{0xFF}, {2, 5}, {1, 1, 0, 9}} {
		if _, err := Decode(b); err == nil {
			t.Errorf("Decode(%v) succeeded", b)
		}
	}
	// Trailing bytes are an error too.
	g := gen.Ring(3)
	data := append(Encode(g), 0)
	if _, err := Decode(data); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		edges := make([]graph.Edge, rng.Intn(5*n))
		for i := range edges {
			edges[i] = graph.Edge{From: graph.NodeID(rng.Intn(n)), To: graph.NodeID(rng.Intn(n))}
		}
		g := graph.FromEdgesDedup(n, edges)
		h, err := Decode(Encode(g))
		if err != nil {
			return false
		}
		return g.Equal(h) && int64(len(Encode(g))) == EncodedSize(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The point of the extension: a locality ordering compresses the
// graph better than a random one — small gaps, small varints.
func TestOrderingAffectsCompression(t *testing.T) {
	g := gen.Web(8000, gen.DefaultWeb, 3)
	random := g.Relabel(order.Random(g.NumNodes(), 5))
	gord := g.Relabel(core.Order(g))
	szRandom := EncodedSize(random)
	szGorder := EncodedSize(gord)
	if szGorder >= szRandom {
		t.Errorf("Gorder encoding %d not below random %d", szGorder, szRandom)
	}
	if BitsPerEdge(gord) >= BitsPerEdge(random) {
		t.Error("bits/edge not improved")
	}
}

func TestBitsPerEdgeEmpty(t *testing.T) {
	if BitsPerEdge(graph.FromEdges(3, nil)) != 0 {
		t.Error("bits/edge of edgeless graph not 0")
	}
}
