// Package compress implements varint gap encoding of adjacency lists
// — the WebGraph-style compression the paper's discussion points to
// as a second consumer of locality-aware orderings: when neighbour
// IDs are close to the vertex and to each other, their deltas are
// small and encode in fewer bytes. EncodedSize is the metric; Encode
// and Decode are a complete, tested codec so the number is honest.
package compress

import (
	"encoding/binary"
	"fmt"

	"gorder/internal/graph"
)

// zigzag maps signed deltas to unsigned varint-friendly values.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Encode writes g's out-adjacency as gap-encoded varints: for each
// vertex, the degree, then the zigzag delta of the first neighbour
// from the vertex itself, then deltas between consecutive (sorted)
// neighbours. Returns the encoded bytes.
func Encode(g *graph.Graph) []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	n := g.NumNodes()
	putUvarint(uint64(n))
	for u := 0; u < n; u++ {
		adj := g.OutNeighbors(graph.NodeID(u))
		putUvarint(uint64(len(adj)))
		prev := int64(u)
		first := true
		for _, v := range adj {
			if first {
				putUvarint(zigzag(int64(v) - prev))
				first = false
			} else {
				// Sorted neighbours: strictly non-negative gaps.
				putUvarint(uint64(int64(v) - prev))
			}
			prev = int64(v)
		}
	}
	return buf
}

// Decode reconstructs a graph from Encode's output.
func Decode(data []byte) (*graph.Graph, error) {
	pos := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("compress: truncated varint at offset %d", pos)
		}
		pos += n
		return v, nil
	}
	nu, err := next()
	if err != nil {
		return nil, err
	}
	n := int(nu)
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		deg, err := next()
		if err != nil {
			return nil, err
		}
		prev := int64(u)
		for j := uint64(0); j < deg; j++ {
			raw, err := next()
			if err != nil {
				return nil, err
			}
			var v int64
			if j == 0 {
				v = prev + unzigzag(raw)
			} else {
				v = prev + int64(raw)
			}
			if v < 0 || v >= int64(n) {
				return nil, fmt.Errorf("compress: neighbour %d out of range", v)
			}
			edges = append(edges, graph.Edge{From: graph.NodeID(u), To: graph.NodeID(v)})
			prev = v
		}
	}
	if pos != len(data) {
		return nil, fmt.Errorf("compress: %d trailing bytes", len(data)-pos)
	}
	return graph.FromEdges(n, edges), nil
}

// EncodedSize returns the gap-encoded size of g in bytes — the
// compression metric the ordering experiments compare. Smaller means
// the vertex order packs neighbourhoods more tightly.
func EncodedSize(g *graph.Graph) int64 {
	// Size without materialising: sum varint lengths.
	var total int64
	n := g.NumNodes()
	total += int64(uvarintLen(uint64(n)))
	for u := 0; u < n; u++ {
		adj := g.OutNeighbors(graph.NodeID(u))
		total += int64(uvarintLen(uint64(len(adj))))
		prev := int64(u)
		first := true
		for _, v := range adj {
			if first {
				total += int64(uvarintLen(zigzag(int64(v) - prev)))
				first = false
			} else {
				total += int64(uvarintLen(uint64(int64(v) - prev)))
			}
			prev = int64(v)
		}
	}
	return total
}

// BitsPerEdge returns the compression rate in bits per edge, the unit
// the WebGraph literature reports.
func BitsPerEdge(g *graph.Graph) float64 {
	m := g.NumEdges()
	if m == 0 {
		return 0
	}
	return float64(EncodedSize(g)) * 8 / float64(m)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
