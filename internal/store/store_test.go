package store

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gorder/internal/gen"
	"gorder/internal/graph"
	"gorder/internal/order"
)

func open(t *testing.T, dir string, budget int64) *Store {
	t.Helper()
	s, err := Open(Config{Dir: dir, MemBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStorePutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	g := gen.Ring(32)
	if err := s.PutGraph("d1", "ring32", g, 100); err != nil {
		t.Fatal(err)
	}
	if !s.Resident("d1") {
		t.Error("freshly put graph not resident")
	}
	got, err := s.GetGraph("d1")
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(got) {
		t.Error("GetGraph returned a different graph")
	}
	if s.Reloads() != 0 {
		t.Errorf("resident hit counted %d reloads", s.Reloads())
	}
	if _, err := s.GetGraph("nope"); !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("unknown digest error = %v", err)
	}
}

func TestStoreRestartRestoresCatalog(t *testing.T) {
	dir := t.TempDir()
	g := gen.Ring(16)
	s := open(t, dir, 0)
	if err := s.PutGraph("d1", "ring16", g, 42); err != nil {
		t.Fatal(err)
	}
	if err := s.SetName("alias", "d1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 0)
	cat := s2.Catalog()
	if len(cat) != 1 || cat[0].Digest != "d1" || cat[0].Name != "ring16" ||
		cat[0].Nodes != 16 || cat[0].SrcBytes != 42 {
		t.Fatalf("restored catalog = %+v", cat)
	}
	if s2.Names()["alias"] != "d1" {
		t.Errorf("alias not restored: %v", s2.Names())
	}
	if s2.Resident("d1") {
		t.Error("graph resident before first use after restart")
	}
	got, err := s2.GetGraph("d1")
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(got) {
		t.Error("reloaded graph differs")
	}
	if s2.Reloads() != 1 || !s2.Resident("d1") {
		t.Errorf("reloads=%d resident=%v after cold load", s2.Reloads(), s2.Resident("d1"))
	}
}

func TestStoreLRUEvictionKeepsBudget(t *testing.T) {
	g := gen.Ring(64)
	per := g.MemoryBytes()
	// Room for two rings, not three.
	s := open(t, t.TempDir(), 2*per)
	for _, d := range []string{"a", "b", "c"} {
		if err := s.PutGraph(d, d, gen.Ring(64), 1); err != nil {
			t.Fatal(err)
		}
	}
	if s.ResidentBytes() > 2*per {
		t.Errorf("resident bytes %d exceed budget %d", s.ResidentBytes(), 2*per)
	}
	if s.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions())
	}
	if s.Resident("a") {
		t.Error("least-recently-used graph a still resident")
	}
	// Evicted graphs remain servable from disk and re-enter residency,
	// displacing the new least-recently-used entry (b).
	if _, err := s.GetGraph("a"); err != nil {
		t.Fatalf("evicted graph not servable: %v", err)
	}
	if !s.Resident("a") || s.Resident("b") {
		t.Errorf("after reload: resident(a)=%v resident(b)=%v", s.Resident("a"), s.Resident("b"))
	}
	if s.ResidentBytes() > 2*per {
		t.Errorf("resident bytes %d exceed budget after reload", s.ResidentBytes())
	}
}

func TestStoreOversizedGraphServedUncached(t *testing.T) {
	s := open(t, t.TempDir(), 8) // smaller than any graph
	if err := s.PutGraph("big", "big", gen.Ring(128), 1); err != nil {
		t.Fatal(err)
	}
	if s.Resident("big") || s.ResidentBytes() != 0 {
		t.Error("graph larger than the whole budget was admitted")
	}
	if _, err := s.GetGraph("big"); err != nil {
		t.Fatalf("oversized graph not servable: %v", err)
	}
}

func TestStoreCorruptBlobDropped(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	if err := s.PutGraph("d1", "g", gen.Ring(16), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte: the CRC32 footer must catch it.
	path := s.graphPath("d1")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x40
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 0)
	if _, err := s2.GetGraph("d1"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt blob error = %v, want ErrCorrupt", err)
	}
	// The blob and every trace of it are gone, so re-upload can heal.
	if s2.Has("d1") {
		t.Error("corrupt graph still in the catalog")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("corrupt blob file not removed")
	}

	// A third open must not resurrect it from a stale manifest.
	s3 := open(t, dir, 0)
	if s3.Has("d1") {
		t.Error("corrupt graph resurrected on reopen")
	}
}

func TestStoreForeignFormatBlobKept(t *testing.T) {
	dir := t.TempDir()
	s0 := open(t, dir, 0)
	if err := s0.PutGraph("d1", "g", gen.Ring(16), 1); err != nil {
		t.Fatal(err)
	}
	if err := s0.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s0.graphPath("d1"), []byte("NOTAGRPH????????"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir, 0) // fresh residency: the next Get must hit the blob
	_, err := s.GetGraph("d1")
	if err == nil || !errors.Is(err, graph.ErrBadMagic) {
		t.Fatalf("foreign blob error = %v, want ErrBadMagic", err)
	}
	// Format mismatch is not bit rot: the blob stays for inspection.
	if !s.Has("d1") {
		t.Error("foreign-format blob was dropped")
	}
}

func TestStoreOrderArtifacts(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	perm := order.Identity(16)
	perm[0], perm[1] = 1, 0

	if _, ok := s.GetOrder("d1", "gorder", "abcd", 16); ok {
		t.Fatal("hit on an empty store")
	}
	if s.Misses() != 1 {
		t.Errorf("misses = %d, want 1", s.Misses())
	}
	if err := s.PutOrder("d1", "gorder", "abcd", perm); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetOrder("d1", "gorder", "abcd", 16)
	if !ok || got[0] != 1 || got[1] != 0 {
		t.Fatalf("artifact hit = %v, perm prefix %v", ok, got[:2])
	}
	if s.Hits() != 1 {
		t.Errorf("hits = %d, want 1", s.Hits())
	}
	// Wrong expected length invalidates rather than serving a
	// mismatched permutation.
	if _, ok := s.GetOrder("d1", "gorder", "abcd", 8); ok {
		t.Fatal("length-mismatched artifact served")
	}
	if _, ok := s.GetOrder("d1", "gorder", "abcd", 16); ok {
		t.Fatal("invalidated artifact served again")
	}

	// Survives a restart.
	if err := s.PutOrder("d1", "rcm", "ffff", perm); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Orders whose graph is gone are reconciled away on open; register
	// the graph so the artifact survives.
	s2 := open(t, dir, 0)
	if _, ok := s2.GetOrder("d1", "rcm", "ffff", 16); ok {
		t.Fatal("artifact for an unknown graph survived reconciliation")
	}

	// With the graph present, artifacts persist across restarts.
	s3 := open(t, dir, 0)
	if err := s3.PutGraph("d2", "g", gen.Ring(16), 1); err != nil {
		t.Fatal(err)
	}
	if err := s3.PutOrder("d2", "rcm", "ffff", perm); err != nil {
		t.Fatal(err)
	}
	s3.Close()
	s4 := open(t, dir, 0)
	if _, ok := s4.GetOrder("d2", "rcm", "ffff", 16); !ok {
		t.Fatal("artifact did not survive restart")
	}

	// A corrupted artifact file is detected and recomputation forced.
	file := filepath.Join(dir, ordersDirName, orderFileName("d2", "rcm", "ffff"))
	if err := os.WriteFile(file, []byte("5\n4\n3\n2\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s4.GetOrder("d2", "rcm", "ffff", 16); ok {
		t.Fatal("artifact with a wrong checksum served")
	}
}

// TestStoreColdWarm is the CI smoke: a generated graph's ordering
// artifact is computed once (cold: miss, then persisted) and served
// from the store on the warm pass, across a store reopen.
func TestStoreColdWarm(t *testing.T) {
	dir := t.TempDir()
	g := gen.BarabasiAlbert(500, 4, 7)
	perm := order.Identity(g.NumNodes())

	s := open(t, dir, 0)
	if err := s.PutGraph("digest", "social", g, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetOrder("digest", "gorder", "k1", g.NumNodes()); ok {
		t.Fatal("cold pass hit")
	}
	if err := s.PutOrder("digest", "gorder", "k1", perm); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 0)
	if _, err := s2.GetGraph("digest"); err != nil {
		t.Fatalf("warm pass graph load: %v", err)
	}
	if _, ok := s2.GetOrder("digest", "gorder", "k1", g.NumNodes()); !ok {
		t.Fatal("warm pass missed the persisted artifact")
	}
	if s2.Hits() != 1 || s2.Misses() != 0 || s2.Reloads() != 1 {
		t.Errorf("warm pass counters: hits=%d misses=%d reloads=%d",
			s2.Hits(), s2.Misses(), s2.Reloads())
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	write := func(content string) error {
		return WriteFileAtomic(path, 0o644, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		})
	}
	if err := write("first"); err != nil {
		t.Fatal(err)
	}
	if err := write("second"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "second" {
		t.Fatalf("content = %q, %v", data, err)
	}
	// A failing writer leaves the previous content and no temp litter.
	boom := errors.New("boom")
	err = WriteFileAtomic(path, 0o644, func(io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("writer error not propagated: %v", err)
	}
	data, _ = os.ReadFile(path)
	if string(data) != "second" {
		t.Errorf("failed write clobbered the file: %q", data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

func TestStoreResultArtifacts(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	blob := []byte("GQR1 pretend-encoded-pagerank-result")

	// Results for unregistered graphs are refused: a result must never
	// outlive (or predate) the graph it describes.
	if err := s.PutResult("d1", "pr", "abcd", blob); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("orphan result error = %v, want ErrUnknownGraph", err)
	}
	if err := s.PutGraph("d1", "g", gen.Ring(16), 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetResult("d1", "pr", "abcd"); ok {
		t.Fatal("hit on an empty result store")
	}
	if s.ResultMisses() != 1 {
		t.Errorf("result misses = %d, want 1", s.ResultMisses())
	}
	if err := s.PutResult("d1", "pr", "abcd", blob); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetResult("d1", "pr", "abcd")
	if !ok || string(got) != string(blob) {
		t.Fatalf("round trip = %v, %q", ok, got)
	}
	if s.ResultHits() != 1 || s.ResultCount() != 1 {
		t.Errorf("hits=%d count=%d, want 1,1", s.ResultHits(), s.ResultCount())
	}

	// Survives a restart byte for byte.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, 0)
	got, ok = s2.GetResult("d1", "pr", "abcd")
	if !ok || string(got) != string(blob) {
		t.Fatalf("restart round trip = %v, %q", ok, got)
	}

	// A corrupted result blob is dropped so the caller recomputes; the
	// file is removed and no reopen resurrects the record.
	file := filepath.Join(dir, resultsDirName, resultFileName("d1", "pr", "abcd"))
	if err := os.WriteFile(file, []byte("bitrot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.GetResult("d1", "pr", "abcd"); ok {
		t.Fatal("corrupt result served")
	}
	if _, err := os.Stat(file); !errors.Is(err, os.ErrNotExist) {
		t.Error("corrupt result file not removed")
	}
	if s2.ResultCount() != 0 {
		t.Errorf("result count = %d after corrupt drop", s2.ResultCount())
	}
	s2.Close()
	s3 := open(t, dir, 0)
	if _, ok := s3.GetResult("d1", "pr", "abcd"); ok {
		t.Fatal("corrupt result resurrected on reopen")
	}

	// Re-put heals, and dropping the graph takes its results with it.
	if err := s3.PutResult("d1", "pr", "abcd", blob); err != nil {
		t.Fatal(err)
	}
	s3.dropGraph("d1")
	if s3.ResultCount() != 0 {
		t.Errorf("results survived their graph: count = %d", s3.ResultCount())
	}
}

func TestStoreLatestOrder(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	if _, _, ok := s.LatestOrder("d1", ""); ok {
		t.Fatal("latest order on an empty store")
	}
	perm := order.Identity(16)
	if err := s.PutOrder("d1", "rcm", "aaaa", perm); err != nil {
		t.Fatal(err)
	}
	if err := s.PutOrder("d1", "gorder", "bbbb", perm); err != nil {
		t.Fatal(err)
	}
	if err := s.PutOrder("other", "slashburn", "cccc", perm); err != nil {
		t.Fatal(err)
	}
	// Touching an artifact makes it the latest; other graphs' artifacts
	// never leak in.
	if _, ok := s.GetOrder("d1", "rcm", "aaaa", 16); !ok {
		t.Fatal("artifact gone")
	}
	if m, k, ok := s.LatestOrder("d1", ""); !ok || m != "rcm" || k != "aaaa" {
		t.Fatalf("latest = %s/%s %v, want rcm/aaaa", m, k, ok)
	}
	// Method filter pins the scan to that method's artifacts.
	if m, k, ok := s.LatestOrder("d1", "gorder"); !ok || m != "gorder" || k != "bbbb" {
		t.Fatalf("latest gorder = %s/%s %v, want gorder/bbbb", m, k, ok)
	}
	if _, _, ok := s.LatestOrder("d1", "slashburn"); ok {
		t.Fatal("method filter leaked another graph's artifact")
	}
}
