package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// On-disk layout under the store directory. These names appear only in
// this package — CI greps that no other package builds paths into the
// data dir.
const (
	graphsDirName  = "graphs"
	ordersDirName  = "orders"
	resultsDirName = "results"
	manifestName   = "manifest.json"

	manifestVersion = 1
)

// graphRec is one graph blob's manifest entry: everything the daemon
// needs to serve its catalog after a restart without touching the blob.
type graphRec struct {
	Name       string    `json:"name"`        // primary display name
	Nodes      int       `json:"nodes"`       //
	Edges      int64     `json:"edges"`       //
	SrcBytes   int64     `json:"src_bytes"`   // size of the original upload
	FileBytes  int64     `json:"file_bytes"`  // size of the CSR blob on disk
	CRC32      string    `json:"crc32"`       // checksum of the blob file
	Added      time.Time `json:"added"`       //
	LastAccess time.Time `json:"last_access"` //
}

// orderRec is one ordering artifact's manifest entry.
type orderRec struct {
	Graph      string    `json:"graph"`  // graph digest the permutation belongs to
	Method     string    `json:"method"` // canonical lowercase ordering name
	OptKey     string    `json:"opt_key"`
	Bytes      int64     `json:"bytes"`
	CRC32      string    `json:"crc32"`
	Added      time.Time `json:"added"`
	LastAccess time.Time `json:"last_access"`
}

// resultRec is one materialized kernel-result artifact's manifest
// entry: a whole-graph query result (PageRank ranks, core numbers, …)
// in the query tier's binary codec, keyed by graph digest + canonical
// kernel name + canonical-params hash.
type resultRec struct {
	Graph      string    `json:"graph"`  // graph digest the result belongs to
	Kernel     string    `json:"kernel"` // canonical lowercase kernel name
	ParamKey   string    `json:"param_key"`
	Bytes      int64     `json:"bytes"`
	CRC32      string    `json:"crc32"`
	Added      time.Time `json:"added"`
	LastAccess time.Time `json:"last_access"`
}

// manifest is the JSON index of everything in the store, written
// atomically on every mutation so a crash never loses or tears it.
type manifest struct {
	Version int                  `json:"version"`
	Graphs  map[string]*graphRec `json:"graphs"` // digest -> record
	Names   map[string]string    `json:"names"`  // graph name -> digest
	Orders  map[string]*orderRec `json:"orders"` // artifact file name -> record
	// Results maps result-artifact file names to records. Omitted
	// (nil) in manifests written before the query tier existed.
	Results map[string]*resultRec `json:"results,omitempty"`
}

func newManifest() *manifest {
	return &manifest{
		Version: manifestVersion,
		Graphs:  make(map[string]*graphRec),
		Names:   make(map[string]string),
		Orders:  make(map[string]*orderRec),
		Results: make(map[string]*resultRec),
	}
}

// loadManifest reads the manifest at path; a missing file is an empty
// store, a torn or unparseable one is an error (the atomic writer
// makes that a disk fault, not a crash artifact).
func loadManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return newManifest(), nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: corrupt manifest %s: %w", path, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("store: manifest %s has version %d, this build reads %d",
			path, m.Version, manifestVersion)
	}
	if m.Graphs == nil {
		m.Graphs = make(map[string]*graphRec)
	}
	if m.Names == nil {
		m.Names = make(map[string]string)
	}
	if m.Orders == nil {
		m.Orders = make(map[string]*orderRec)
	}
	if m.Results == nil {
		m.Results = make(map[string]*resultRec)
	}
	return &m, nil
}

// save writes the manifest atomically.
func (m *manifest) save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, 0o644, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
