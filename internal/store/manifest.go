package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// On-disk layout under the store directory. These names appear only in
// this package — CI greps that no other package builds paths into the
// data dir.
const (
	graphsDirName  = "graphs"
	ordersDirName  = "orders"
	resultsDirName = "results"
	manifestName   = "manifest.json"

	manifestVersion = 1
)

// graphRec is one graph blob's manifest entry: everything the daemon
// needs to serve its catalog after a restart without touching the blob.
type graphRec struct {
	Name       string    `json:"name"`        // primary display name
	Nodes      int       `json:"nodes"`       //
	Edges      int64     `json:"edges"`       //
	SrcBytes   int64     `json:"src_bytes"`   // size of the original upload
	FileBytes  int64     `json:"file_bytes"`  // size of the CSR blob on disk
	CRC32      string    `json:"crc32"`       // checksum of the blob file
	Added      time.Time `json:"added"`       //
	LastAccess time.Time `json:"last_access"` //
}

// orderRec is one ordering artifact's manifest entry.
type orderRec struct {
	Graph      string    `json:"graph"`  // graph digest the permutation belongs to
	Method     string    `json:"method"` // canonical lowercase ordering name
	OptKey     string    `json:"opt_key"`
	Bytes      int64     `json:"bytes"`
	CRC32      string    `json:"crc32"`
	Added      time.Time `json:"added"`
	LastAccess time.Time `json:"last_access"`
}

// resultRec is one materialized kernel-result artifact's manifest
// entry: a whole-graph query result (PageRank ranks, core numbers, …)
// in the query tier's binary codec, keyed by graph digest + canonical
// kernel name + canonical-params hash.
type resultRec struct {
	Graph      string    `json:"graph"`  // graph digest the result belongs to
	Kernel     string    `json:"kernel"` // canonical lowercase kernel name
	ParamKey   string    `json:"param_key"`
	Bytes      int64     `json:"bytes"`
	CRC32      string    `json:"crc32"`
	Added      time.Time `json:"added"`
	LastAccess time.Time `json:"last_access"`
}

// qualityRec is a lineage's persisted ordering-quality state: the
// monitor's baseline (set at the last full ordering) and running
// totals, maintained incrementally across mutation batches so a
// restarted daemon resumes decay tracking without rescoring anything.
type qualityRec struct {
	Method      string  `json:"method"`       // canonical ordering the lineage follows
	OptKey      string  `json:"opt_key"`      // its canonical-options hash (artifact key part)
	OptionsJSON string  `json:"options_json"` // canonical options as JSON — opt_key is a hash, repair jobs need the values
	Window      int     `json:"window"`       // window width F is tracked at
	BaseF       int64   `json:"base_f"`       // F(pi) at the last full ordering
	BaseEdges   int64   `json:"base_edges"`   // edge count then
	BasePacking float64 `json:"base_packing"` // packing factor then
	CurF        int64   `json:"cur_f"`        // F(pi) on the current tip
	CurEdges    int64   `json:"cur_edges"`    //
	CurPacking  float64 `json:"cur_packing"`  //
	CleanNodes  int     `json:"clean_nodes"`  // vertex count at the last full ordering; repair re-places everything after it
	Repairs     int     `json:"repairs"`      // incremental repairs since the last full ordering
	// Dirty accumulates changed-edge endpoints since the last full
	// ordering, capped at maxDirtyTracked; past the cap DirtyOverflow
	// forces the next repair to be a full recompute.
	Dirty         []uint32 `json:"dirty,omitempty"`
	DirtyOverflow bool     `json:"dirty_overflow,omitempty"`
}

// lineageRec is one named graph's version history, oldest first. The
// Names alias always points at the last (tip) entry.
type lineageRec struct {
	Versions []string    `json:"versions"`
	Quality  *qualityRec `json:"quality,omitempty"`
}

// manifest is the JSON index of everything in the store, written
// atomically on every mutation so a crash never loses or tears it.
type manifest struct {
	Version int                  `json:"version"`
	Graphs  map[string]*graphRec `json:"graphs"` // digest -> record
	Names   map[string]string    `json:"names"`  // graph name -> tip digest
	Orders  map[string]*orderRec `json:"orders"` // artifact file name -> record
	// Results maps result-artifact file names to records. Omitted
	// (nil) in manifests written before the query tier existed.
	Results map[string]*resultRec `json:"results,omitempty"`
	// Lineages maps graph names to version histories. Omitted (nil) in
	// manifests written before graphs became mutable; loading such a
	// manifest synthesizes a one-version lineage per name.
	Lineages map[string]*lineageRec `json:"lineages,omitempty"`
}

func newManifest() *manifest {
	return &manifest{
		Version:  manifestVersion,
		Graphs:   make(map[string]*graphRec),
		Names:    make(map[string]string),
		Orders:   make(map[string]*orderRec),
		Results:  make(map[string]*resultRec),
		Lineages: make(map[string]*lineageRec),
	}
}

// loadManifest reads the manifest at path; a missing file is an empty
// store, a torn or unparseable one is an error (the atomic writer
// makes that a disk fault, not a crash artifact).
func loadManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return newManifest(), nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: corrupt manifest %s: %w", path, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("store: manifest %s has version %d, this build reads %d",
			path, m.Version, manifestVersion)
	}
	if m.Graphs == nil {
		m.Graphs = make(map[string]*graphRec)
	}
	if m.Names == nil {
		m.Names = make(map[string]string)
	}
	if m.Orders == nil {
		m.Orders = make(map[string]*orderRec)
	}
	if m.Results == nil {
		m.Results = make(map[string]*resultRec)
	}
	if m.Lineages == nil {
		m.Lineages = make(map[string]*lineageRec)
	}
	// Pre-lineage manifests: every named graph becomes a one-version
	// lineage so version-aware callers see a uniform model.
	for name, digest := range m.Names {
		if _, ok := m.Lineages[name]; !ok {
			m.Lineages[name] = &lineageRec{Versions: []string{digest}}
		}
	}
	return &m, nil
}

// save writes the manifest atomically.
func (m *manifest) save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, 0o644, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
