package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gorder/internal/gen"
	"gorder/internal/graph"
	"gorder/internal/order"
)

func TestLineageAppendAndResolve(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	g1, g2 := gen.Ring(8), gen.Ring(12)
	v, err := s.AppendVersion("social", "d1", g1, 10)
	if err != nil || v != 1 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	v, err = s.AppendVersion("social", "d2", g2, 0)
	if err != nil || v != 2 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	// Replaying the tip digest is a no-op.
	v, err = s.AppendVersion("social", "d2", g2, 0)
	if err != nil || v != 2 {
		t.Fatalf("idempotent append v=%d err=%v", v, err)
	}

	digest, resolved, latest, err := s.ResolveVersion("social", 0)
	if err != nil || digest != "d2" || resolved != 2 || latest != 2 {
		t.Fatalf("latest = %s v%d/%d err=%v", digest, resolved, latest, err)
	}
	digest, resolved, _, err = s.ResolveVersion("social", 1)
	if err != nil || digest != "d1" || resolved != 1 {
		t.Fatalf("pinned = %s v%d err=%v", digest, resolved, err)
	}
	if _, _, _, err := s.ResolveVersion("social", 3); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("v3 err = %v", err)
	}
	if _, _, _, err := s.ResolveVersion("nope", 0); !errors.Is(err, ErrUnknownLineage) {
		t.Fatalf("unknown lineage err = %v", err)
	}

	info, ok := s.Lineage("social")
	if !ok || len(info.Versions) != 2 {
		t.Fatalf("lineage info %+v ok=%v", info, ok)
	}
	if info.Versions[0].Digest != "d1" || info.Versions[1].Digest != "d2" ||
		info.Versions[1].Nodes != 12 {
		t.Fatalf("version metadata %+v", info.Versions)
	}
	// The name alias follows the tip (upload/registry paths read it).
	if s.Names()["social"] != "d2" {
		t.Fatalf("name alias = %q, want d2", s.Names()["social"])
	}
}

func TestPutGraphExtendsLineage(t *testing.T) {
	// Re-uploading different content under an existing name is a new
	// version, not a silent alias re-point.
	s := open(t, t.TempDir(), 0)
	if err := s.PutGraph("d1", "g", gen.Ring(8), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.PutGraph("d2", "g", gen.Ring(9), 1); err != nil {
		t.Fatal(err)
	}
	info, ok := s.Lineage("g")
	if !ok || len(info.Versions) != 2 || info.Versions[1].Digest != "d2" {
		t.Fatalf("lineage after re-upload: %+v ok=%v", info, ok)
	}
}

func TestLineageSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	if _, err := s.AppendVersion("g", "d1", gen.Ring(8), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendVersion("g", "d2", gen.Ring(12), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SetQuality("g", Quality{
		Method: "gorder", OptKey: "abcd", OptionsJSON: `{"window":5}`, Window: 5,
		BaseF: 100, BaseEdges: 50, CurF: 90, CurEdges: 55,
		CleanNodes: 8, Repairs: 1, Dirty: []graph.NodeID{3, 4},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 0)
	info, ok := s2.Lineage("g")
	if !ok || len(info.Versions) != 2 {
		t.Fatalf("lineage lost across restart: %+v ok=%v", info, ok)
	}
	q, ok := s2.GetQuality("g")
	if !ok || q.Method != "gorder" || q.CurF != 90 || q.CleanNodes != 8 ||
		q.Repairs != 1 || len(q.Dirty) != 2 || q.OptionsJSON != `{"window":5}` {
		t.Fatalf("quality lost across restart: %+v ok=%v", q, ok)
	}
	if d := q.Decay(); d < 0.81 || d > 0.82 { // (90/55)/(100/50)
		t.Fatalf("decay = %v", d)
	}
}

func TestQualityDirtyCapOverflow(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	if _, err := s.AppendVersion("g", "d1", gen.Ring(8), 0); err != nil {
		t.Fatal(err)
	}
	dirty := make([]graph.NodeID, MaxDirtyTracked+10)
	for i := range dirty {
		dirty[i] = graph.NodeID(i)
	}
	if err := s.SetQuality("g", Quality{Method: "gorder", Dirty: dirty}); err != nil {
		t.Fatal(err)
	}
	q, _ := s.GetQuality("g")
	if !q.DirtyOverflow || len(q.Dirty) != MaxDirtyTracked {
		t.Fatalf("overflow=%v len=%d", q.DirtyOverflow, len(q.Dirty))
	}
	if err := s.SetQuality("nope", Quality{}); !errors.Is(err, ErrUnknownLineage) {
		t.Fatalf("quality on unknown lineage err = %v", err)
	}
}

// A corrupt tip blob heals the lineage to the previous version — not
// to nothing. The name follows, the stale quality record is dropped,
// and the surviving version keeps serving.
func TestLineageCorruptTipHealsToPrevious(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	g1, g2 := gen.Ring(8), gen.Ring(12)
	if _, err := s.AppendVersion("g", "d1", g1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendVersion("g", "d2", g2, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SetQuality("g", Quality{Method: "gorder", CurF: 9}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the tip blob (keeping the magic so it reads as a damaged
	// gorder blob, not a foreign file) and force a disk read.
	blobPath := filepath.Join(dir, graphsDirName, "d2")
	blob, err := os.ReadFile(blobPath)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(blobPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	if rg, ok := s.resident["d2"]; ok {
		s.residentBytes -= rg.bytes
		delete(s.resident, "d2")
	}
	s.mu.Unlock()
	if _, err := s.GetGraph("d2"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt tip err = %v", err)
	}

	info, ok := s.Lineage("g")
	if !ok || len(info.Versions) != 1 || info.Versions[0].Digest != "d1" {
		t.Fatalf("lineage after corrupt tip: %+v ok=%v", info, ok)
	}
	if s.Names()["g"] != "d1" {
		t.Fatalf("name points at %q, want healed tip d1", s.Names()["g"])
	}
	if _, ok := s.GetQuality("g"); ok {
		t.Fatal("stale quality record survived the healed tip")
	}
	if got, err := s.GetGraph("d1"); err != nil || !g1.Equal(got) {
		t.Fatalf("previous version unusable after heal: %v", err)
	}
	digest, resolved, latest, err := s.ResolveVersion("g", 0)
	if err != nil || digest != "d1" || resolved != 1 || latest != 1 {
		t.Fatalf("resolve after heal = %s v%d/%d err=%v", digest, resolved, latest, err)
	}
}

// Same healing on the restart path: a tip blob missing at Open time
// truncates the lineage to the last version whose blob survives.
func TestLineageOpenHealsMissingTip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	if _, err := s.AppendVersion("g", "d1", gen.Ring(8), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendVersion("g", "d2", gen.Ring(12), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendVersion("g", "d3", gen.Ring(16), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, graphsDirName, "d3")); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 0)
	info, ok := s2.Lineage("g")
	if !ok || len(info.Versions) != 2 || info.Versions[1].Digest != "d2" {
		t.Fatalf("lineage after missing tip: %+v ok=%v", info, ok)
	}
	if s2.Names()["g"] != "d2" {
		t.Fatalf("name points at %q, want d2", s2.Names()["g"])
	}
	// A middle version vanishing closes the hole but keeps the tip.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, graphsDirName, "d1")); err != nil {
		t.Fatal(err)
	}
	s3 := open(t, dir, 0)
	info, ok = s3.Lineage("g")
	if !ok || len(info.Versions) != 1 || info.Versions[0].Digest != "d2" {
		t.Fatalf("lineage after missing middle: %+v ok=%v", info, ok)
	}
	if s3.Names()["g"] != "d2" {
		t.Fatalf("name points at %q, want d2", s3.Names()["g"])
	}
}

func TestOrdersFor(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	perm := order.Identity(8)
	for _, k := range []OrderKey{{"rcm", "kk"}, {"gorder", "aa"}, {"gorder", "bb"}} {
		if err := s.PutOrder("d1", k.Method, k.OptKey, perm); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutOrder("d2", "gorder", "aa", perm); err != nil {
		t.Fatal(err)
	}
	got := s.OrdersFor("d1")
	want := []OrderKey{{"gorder", "aa"}, {"gorder", "bb"}, {"rcm", "kk"}}
	if len(got) != len(want) {
		t.Fatalf("OrdersFor = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OrdersFor = %v, want %v", got, want)
		}
	}
}

// LatestOrder tie-breaking is deterministic: equal LastAccess falls
// to Added, equal both fall to the file name. Records are manipulated
// directly — wall-clock writes can't reproduce exact ties reliably.
func TestLatestOrderTieBreaking(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	perm := order.Identity(8)
	for _, k := range []OrderKey{{"amethod", "k1"}, {"bmethod", "k2"}, {"cmethod", "k3"}} {
		if err := s.PutOrder("d1", k.Method, k.OptKey, perm); err != nil {
			t.Fatal(err)
		}
	}
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	later := t0.Add(time.Hour)
	s.mu.Lock()
	for file, rec := range s.man.Orders {
		rec.LastAccess, rec.Added = t0, t0
		if rec.Method == "bmethod" {
			rec.Added = later
		}
		_ = file
	}
	s.mu.Unlock()
	// Equal LastAccess everywhere: the newest Added wins.
	if m, _, ok := s.LatestOrder("d1", ""); !ok || m != "bmethod" {
		t.Fatalf("added tie-break chose %q, want bmethod", m)
	}
	// Equal LastAccess and Added: the greatest file name wins —
	// cmethod sorts after amethod in the artifact naming scheme.
	s.mu.Lock()
	for _, rec := range s.man.Orders {
		rec.Added = t0
	}
	s.mu.Unlock()
	if m, _, ok := s.LatestOrder("d1", ""); !ok || m != "cmethod" {
		t.Fatalf("file-name tie-break chose %q, want cmethod", m)
	}
	// LastAccess still dominates both.
	s.mu.Lock()
	for _, rec := range s.man.Orders {
		if rec.Method == "amethod" {
			rec.LastAccess = later
		}
	}
	s.mu.Unlock()
	if m, _, ok := s.LatestOrder("d1", ""); !ok || m != "amethod" {
		t.Fatalf("last-access chose %q, want amethod", m)
	}
}
