package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"slices"
	"strings"
	"time"

	"gorder/internal/graph"
)

// ErrUnknownLineage reports a graph name the store has no version
// history for.
var ErrUnknownLineage = errors.New("store: unknown lineage")

// ErrUnknownVersion reports a version number outside a lineage's
// recorded range.
var ErrUnknownVersion = errors.New("store: unknown version")

// MaxDirtyTracked caps how many changed-edge endpoints a lineage's
// quality record accumulates between full orderings. Past the cap the
// record flips to DirtyOverflow and the next repair must be a full
// recompute — an unbounded dirty list would both bloat the manifest
// and make incremental repair pointless.
const MaxDirtyTracked = 4096

// VersionInfo describes one version of a lineage.
type VersionInfo struct {
	Version int // 1-based; Versions[0] is v1
	Digest  string
	Nodes   int
	Edges   int64
	Added   time.Time
}

// Quality is the exported view of a lineage's ordering-quality state.
// The zero Method means no ordering has been recorded yet.
type Quality struct {
	Method      string
	OptKey      string
	OptionsJSON string
	Window      int
	BaseF       int64
	BaseEdges   int64
	BasePacking float64
	CurF        int64
	CurEdges    int64
	CurPacking  float64
	CleanNodes  int
	Repairs     int
	Dirty       []graph.NodeID
	DirtyOverflow bool
}

// Decay is the monitor's quality signal: the current edge-normalised
// score density relative to the baseline's. It tracks the true ratio
// against a full recompute within a few percent on growth workloads
// (F scales with edge count at constant ordering quality) without
// ever rescoring the whole graph. 1.0 (or above) is healthy; 0 if no
// baseline exists.
func (q Quality) Decay() float64 {
	if q.BaseF <= 0 || q.BaseEdges <= 0 || q.CurEdges <= 0 {
		return 0
	}
	return (float64(q.CurF) / float64(q.CurEdges)) /
		(float64(q.BaseF) / float64(q.BaseEdges))
}

// LineageInfo is the catalog view of one named graph's history.
type LineageInfo struct {
	Name     string
	Versions []VersionInfo
	Quality  *Quality // nil until an ordering is recorded
}

// OrderKey names one ordering artifact of a graph digest: the method
// plus canonical-options hash. The mutation path uses it to discover
// which artifacts of the old tip to carry forward to the new one.
type OrderKey struct {
	Method string
	OptKey string
}

// AppendVersion persists g as the next version of the named lineage:
// the blob is stored content-addressed under digest exactly like
// PutGraph, the lineage gains a version entry, and the name alias
// moves to the new tip. Appending the digest already at the tip is a
// no-op (idempotent replays). The lineage is created if the name is
// new. Returns the 1-based version number now at the tip.
func (s *Store) AppendVersion(name, digest string, g *graph.Graph, srcBytes int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lin := s.man.Lineages[name]
	if lin == nil {
		lin = &lineageRec{}
		s.man.Lineages[name] = lin
	}
	if n := len(lin.Versions); n > 0 && lin.Versions[n-1] == digest {
		return n, nil
	}
	if _, ok := s.man.Graphs[digest]; !ok {
		if err := s.writeGraphBlobLocked(digest, name, g, srcBytes); err != nil {
			return 0, err
		}
	}
	lin.Versions = append(lin.Versions, digest)
	s.man.Names[name] = digest
	if err := s.saveManifestLocked(); err != nil {
		return 0, err
	}
	return len(lin.Versions), nil
}

// ResolveVersion maps (name, version) to a digest. version 0 means
// the tip. The tip's version number is returned alongside so callers
// can report what "latest" resolved to.
func (s *Store) ResolveVersion(name string, version int) (digest string, resolved, latest int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lin := s.man.Lineages[name]
	if lin == nil || len(lin.Versions) == 0 {
		return "", 0, 0, fmt.Errorf("%w: %s", ErrUnknownLineage, name)
	}
	latest = len(lin.Versions)
	if version == 0 {
		version = latest
	}
	if version < 1 || version > latest {
		return "", 0, latest, fmt.Errorf("%w: %s@v%d (have v1..v%d)", ErrUnknownVersion, name, version, latest)
	}
	return lin.Versions[version-1], version, latest, nil
}

// Lineage returns the version history of a named graph.
func (s *Store) Lineage(name string) (LineageInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lin := s.man.Lineages[name]
	if lin == nil || len(lin.Versions) == 0 {
		return LineageInfo{}, false
	}
	return s.lineageInfoLocked(name, lin), true
}

// Lineages returns every lineage's catalog view, sorted by name.
func (s *Store) Lineages() []LineageInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]LineageInfo, 0, len(s.man.Lineages))
	for name, lin := range s.man.Lineages {
		if len(lin.Versions) > 0 {
			out = append(out, s.lineageInfoLocked(name, lin))
		}
	}
	slices.SortFunc(out, func(a, b LineageInfo) int { return strings.Compare(a.Name, b.Name) })
	return out
}

func (s *Store) lineageInfoLocked(name string, lin *lineageRec) LineageInfo {
	info := LineageInfo{Name: name, Versions: make([]VersionInfo, 0, len(lin.Versions))}
	for i, digest := range lin.Versions {
		vi := VersionInfo{Version: i + 1, Digest: digest}
		if rec, ok := s.man.Graphs[digest]; ok {
			vi.Nodes, vi.Edges, vi.Added = rec.Nodes, rec.Edges, rec.Added
		}
		info.Versions = append(info.Versions, vi)
	}
	if lin.Quality != nil {
		q := qualityFromRec(lin.Quality)
		info.Quality = &q
	}
	return info
}

// SetQuality records the named lineage's ordering-quality state,
// clamping the dirty list to MaxDirtyTracked (overflow sticks).
func (s *Store) SetQuality(name string, q Quality) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	lin := s.man.Lineages[name]
	if lin == nil || len(lin.Versions) == 0 {
		return fmt.Errorf("%w: %s", ErrUnknownLineage, name)
	}
	rec := &qualityRec{
		Method: q.Method, OptKey: q.OptKey, OptionsJSON: q.OptionsJSON,
		Window: q.Window,
		BaseF:  q.BaseF, BaseEdges: q.BaseEdges, BasePacking: q.BasePacking,
		CurF: q.CurF, CurEdges: q.CurEdges, CurPacking: q.CurPacking,
		CleanNodes: q.CleanNodes, Repairs: q.Repairs,
		DirtyOverflow: q.DirtyOverflow,
	}
	if len(q.Dirty) > MaxDirtyTracked {
		rec.DirtyOverflow = true
		q.Dirty = q.Dirty[:MaxDirtyTracked]
	}
	rec.Dirty = append([]uint32(nil), q.Dirty...)
	lin.Quality = rec
	return s.saveManifestLocked()
}

// GetQuality returns the named lineage's quality state, if recorded.
func (s *Store) GetQuality(name string) (Quality, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lin := s.man.Lineages[name]
	if lin == nil || lin.Quality == nil {
		return Quality{}, false
	}
	return qualityFromRec(lin.Quality), true
}

func qualityFromRec(rec *qualityRec) Quality {
	return Quality{
		Method: rec.Method, OptKey: rec.OptKey, OptionsJSON: rec.OptionsJSON,
		Window: rec.Window,
		BaseF:  rec.BaseF, BaseEdges: rec.BaseEdges, BasePacking: rec.BasePacking,
		CurF: rec.CurF, CurEdges: rec.CurEdges, CurPacking: rec.CurPacking,
		CleanNodes: rec.CleanNodes, Repairs: rec.Repairs,
		Dirty:         append([]graph.NodeID(nil), rec.Dirty...),
		DirtyOverflow: rec.DirtyOverflow,
	}
}

// OrdersFor lists the ordering artifacts stored for one graph digest,
// sorted by method then options hash. The mutation path walks it to
// carry each of the old tip's orderings forward to the new version.
func (s *Store) OrdersFor(digest string) []OrderKey {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []OrderKey
	for _, rec := range s.man.Orders {
		if rec.Graph == digest {
			out = append(out, OrderKey{Method: rec.Method, OptKey: rec.OptKey})
		}
	}
	slices.SortFunc(out, func(a, b OrderKey) int {
		if c := strings.Compare(a.Method, b.Method); c != 0 {
			return c
		}
		return strings.Compare(a.OptKey, b.OptKey)
	})
	return out
}

// writeGraphBlobLocked persists g's CSR blob and manifest record under
// digest — the shared write path of PutGraph and AppendVersion.
func (s *Store) writeGraphBlobLocked(digest, name string, g *graph.Graph, srcBytes int64) error {
	var fileBytes int64
	sum := crc32.NewIEEE()
	err := WriteFileAtomic(s.graphPath(digest), 0o644, func(w io.Writer) error {
		cw := &countWriter{w: io.MultiWriter(w, sum)}
		if err := g.WriteBinary(cw); err != nil {
			return err
		}
		fileBytes = cw.n
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: persisting graph %s: %w", digest, err)
	}
	now := time.Now().UTC()
	s.man.Graphs[digest] = &graphRec{
		Name: name, Nodes: g.NumNodes(), Edges: g.NumEdges(),
		SrcBytes: srcBytes, FileBytes: fileBytes,
		CRC32: fmt.Sprintf("%08x", sum.Sum32()),
		Added: now, LastAccess: now,
	}
	s.admitLocked(digest, g)
	return nil
}

// healAllLineagesLocked reconciles every lineage against the graphs
// actually present (the Open path): versions whose blob records are
// gone close over, names follow surviving tips, and emptied lineages
// disappear. Reports whether anything changed.
func (s *Store) healAllLineagesLocked() bool {
	changed := false
	for name, lin := range s.man.Lineages {
		var tip0 string
		if n := len(lin.Versions); n > 0 {
			tip0 = lin.Versions[n-1]
		}
		before := len(lin.Versions)
		lin.Versions = slices.DeleteFunc(lin.Versions, func(d string) bool {
			_, ok := s.man.Graphs[d]
			return !ok
		})
		if len(lin.Versions) != before {
			changed = true
		}
		if len(lin.Versions) == 0 {
			delete(s.man.Lineages, name)
			delete(s.man.Names, name)
			changed = true
			continue
		}
		tip := lin.Versions[len(lin.Versions)-1]
		if tip != tip0 {
			lin.Quality = nil
		}
		if s.man.Names[name] != tip {
			s.man.Names[name] = tip
			changed = true
		}
	}
	return changed
}

// healLineagesLocked removes a vanished digest from every lineage: a
// corrupt tip heals to the previous version (name repointed), a hole
// in the middle closes over, and a lineage losing its last version
// disappears with its name. A quality record tracking the dropped tip
// is cleared so the monitor re-baselines instead of trusting totals
// for a graph that no longer exists.
func (s *Store) healLineagesLocked(digest string) {
	for name, lin := range s.man.Lineages {
		n := len(lin.Versions)
		wasTip := n > 0 && lin.Versions[n-1] == digest
		lin.Versions = slices.DeleteFunc(lin.Versions, func(d string) bool { return d == digest })
		if len(lin.Versions) == 0 {
			delete(s.man.Lineages, name)
			delete(s.man.Names, name)
			continue
		}
		if wasTip {
			s.man.Names[name] = lin.Versions[len(lin.Versions)-1]
			lin.Quality = nil
		}
	}
}
