// Package store is gorderd's persistence layer: a disk-backed,
// content-addressed store for graph CSR blobs and ordering-permutation
// artifacts, plus an in-memory residency manager with a byte budget
// and LRU eviction.
//
// The point of the store is the paper's amortization argument: an
// ordering's one-time cost only pays off if it outlives the process
// that computed it. Graph blobs live under <dir>/graphs/<digest> in
// the binary CSR format (v1, with a CRC32 footer), ordering artifacts
// under <dir>/orders/<digest>-<method>-<optkey> as permutation text,
// and a crash-safe manifest.json (written temp-file + fsync + rename)
// records names, sizes, checksums, and last-access times — so a
// restarted daemon serves its full catalog and answers repeat ordering
// jobs without recomputing.
//
// Residency: loaded graphs are cached in memory up to a configurable
// byte budget (graph.MemoryBytes accounting). Least-recently-used
// graphs are evicted first; an evicted graph stays on disk and is
// transparently reloaded on next use via the fast ReadBinaryBytes
// path. A graph bigger than the whole budget is served without being
// cached, so resident bytes never exceed the budget.
//
// All file paths under the store directory are built in this package
// only; CI enforces that no other package reaches into the data dir.
package store

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gorder/internal/graph"
	"gorder/internal/order"
)

// ErrUnknownGraph reports a digest the store has no record of.
var ErrUnknownGraph = errors.New("store: unknown graph")

// ErrCorrupt reports a stored blob that failed its integrity checks
// (truncated, checksum mismatch, or undecodable). The store drops the
// blob and its manifest record before returning this, so the caller
// should drop its own reference and let the content be re-uploaded.
var ErrCorrupt = errors.New("store: stored blob is corrupt")

// Config configures a Store.
type Config struct {
	// Dir is the store directory; created (with its graphs/ and
	// orders/ subdirectories) if missing.
	Dir string
	// MemBudget caps the bytes of graphs held resident in memory
	// (graph.MemoryBytes accounting). <= 0 means unlimited.
	MemBudget int64
}

// GraphMeta is the catalog view of one stored graph, reconstructed
// from the manifest without touching the blob.
type GraphMeta struct {
	Digest    string
	Name      string // primary display name
	Nodes     int
	Edges     int64
	SrcBytes  int64 // size of the original upload
	FileBytes int64 // size of the CSR blob on disk
	Added     time.Time
}

// residentGraph is one in-memory graph plus its LRU bookkeeping.
type residentGraph struct {
	g     *graph.Graph
	bytes int64
	seq   int64 // last-touch tick; smallest = least recently used
}

// Store is safe for concurrent use. Disk reads of graph blobs happen
// outside the lock, so a cold load does not stall resident lookups.
type Store struct {
	dir    string
	budget int64

	mu            sync.Mutex
	man           *manifest
	resident      map[string]*residentGraph
	residentBytes int64
	lruSeq        int64

	hits         atomic.Int64 // ordering-artifact cache hits
	misses       atomic.Int64 // ordering-artifact cache misses
	evictions    atomic.Int64 // graphs evicted from residency
	reloads      atomic.Int64 // graphs reloaded from disk after eviction/restart
	resultHits   atomic.Int64 // kernel-result artifact hits
	resultMisses atomic.Int64 // kernel-result artifact misses
}

// Open creates or reopens the store at cfg.Dir. Manifest entries
// whose blob file has vanished are dropped, so the catalog the daemon
// advertises is always servable.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("store: Config.Dir is required")
	}
	for _, d := range []string{cfg.Dir, filepath.Join(cfg.Dir, graphsDirName),
		filepath.Join(cfg.Dir, ordersDirName), filepath.Join(cfg.Dir, resultsDirName)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	man, err := loadManifest(filepath.Join(cfg.Dir, manifestName))
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:      cfg.Dir,
		budget:   cfg.MemBudget,
		man:      man,
		resident: make(map[string]*residentGraph),
	}
	// Reconcile the manifest against the blob files actually present.
	dropped := false
	for digest := range man.Graphs {
		if _, err := os.Stat(s.graphPath(digest)); err != nil {
			delete(man.Graphs, digest)
			dropped = true
		}
	}
	// Lineages heal before the name sweep: a vanished tip repoints its
	// name to the previous surviving version rather than losing it.
	if s.healAllLineagesLocked() {
		dropped = true
	}
	for name, digest := range man.Names {
		if _, ok := man.Graphs[digest]; !ok {
			delete(man.Names, name)
			dropped = true
		}
	}
	for file, rec := range man.Orders {
		_, statErr := os.Stat(filepath.Join(s.dir, ordersDirName, file))
		_, graphOK := man.Graphs[rec.Graph]
		if statErr != nil || !graphOK {
			delete(man.Orders, file)
			dropped = true
		}
	}
	for file, rec := range man.Results {
		_, statErr := os.Stat(filepath.Join(s.dir, resultsDirName, file))
		_, graphOK := man.Graphs[rec.Graph]
		if statErr != nil || !graphOK {
			delete(man.Results, file)
			dropped = true
		}
	}
	if dropped {
		if err := s.saveManifestLocked(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Close flushes the manifest so in-memory last-access updates survive.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveManifestLocked()
}

func (s *Store) graphPath(digest string) string {
	return filepath.Join(s.dir, graphsDirName, digest)
}

func (s *Store) saveManifestLocked() error {
	return s.man.save(filepath.Join(s.dir, manifestName))
}

// ---- graph blobs and residency ------------------------------------------

// Catalog returns every stored graph's metadata, sorted by name then
// digest — the restart path the daemon rebuilds its registry from.
func (s *Store) Catalog() []GraphMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GraphMeta, 0, len(s.man.Graphs))
	for digest, rec := range s.man.Graphs {
		out = append(out, GraphMeta{
			Digest: digest, Name: rec.Name, Nodes: rec.Nodes, Edges: rec.Edges,
			SrcBytes: rec.SrcBytes, FileBytes: rec.FileBytes, Added: rec.Added,
		})
	}
	slices.SortFunc(out, func(a, b GraphMeta) int {
		if c := strings.Compare(a.Name, b.Name); c != 0 {
			return c
		}
		return strings.Compare(a.Digest, b.Digest)
	})
	return out
}

// Names returns the name -> digest aliases recorded in the manifest.
func (s *Store) Names() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.man.Names))
	for name, digest := range s.man.Names {
		out[name] = digest
	}
	return out
}

// PutGraph persists g under digest (the content hash of the source
// bytes), records name as an alias, and makes the graph resident.
// Blobs stay immutable and content-addressed; the name, however, is a
// lineage — uploading different content under an existing name appends
// a new version to it, exactly like AppendVersion.
func (s *Store) PutGraph(digest, name string, g *graph.Graph, srcBytes int64) error {
	_, err := s.AppendVersion(name, digest, g, srcBytes)
	return err
}

// SetName records (or re-points) a name alias for an existing digest.
func (s *Store) SetName(name, digest string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.man.Graphs[digest]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownGraph, digest)
	}
	s.man.Names[name] = digest
	return s.saveManifestLocked()
}

// GetGraph returns the graph stored under digest: from residency when
// warm, otherwise reloaded from its blob (and re-admitted under the
// budget). A blob that fails integrity checks is dropped from the
// store and reported as ErrCorrupt.
func (s *Store) GetGraph(digest string) (*graph.Graph, error) {
	s.mu.Lock()
	if rg, ok := s.resident[digest]; ok {
		s.lruSeq++
		rg.seq = s.lruSeq
		g := rg.g
		s.mu.Unlock()
		return g, nil
	}
	rec, ok := s.man.Graphs[digest]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownGraph, digest)
	}
	rec.LastAccess = time.Now().UTC()
	s.mu.Unlock()

	data, err := os.ReadFile(s.graphPath(digest))
	if err != nil {
		s.dropGraph(digest)
		return nil, fmt.Errorf("%w: graph %s: %v", ErrCorrupt, digest, err)
	}
	g, err := graph.ReadBinaryBytes(data)
	if err != nil {
		if errors.Is(err, graph.ErrBadMagic) {
			// Format mismatch, not bit rot: the blob was never a gorder
			// binary graph. Leave it for inspection.
			return nil, fmt.Errorf("store: graph %s blob has a foreign format: %w", digest, err)
		}
		// Truncation or checksum mismatch: the blob is damaged. Drop it
		// so the content can be re-uploaded under the same digest.
		s.dropGraph(digest)
		return nil, fmt.Errorf("%w: graph %s: %v", ErrCorrupt, digest, err)
	}
	s.reloads.Add(1)
	s.mu.Lock()
	s.admitLocked(digest, g)
	s.mu.Unlock()
	return g, nil
}

// Resident reports whether digest's graph is currently in memory.
func (s *Store) Resident(digest string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.resident[digest]
	return ok
}

// Has reports whether digest has a stored blob.
func (s *Store) Has(digest string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.man.Graphs[digest]
	return ok
}

// admitLocked makes g resident and evicts least-recently-used others
// until the budget holds. A graph larger than the entire budget is
// never admitted — callers still get it, it just is not cached — so
// resident bytes stay <= budget.
func (s *Store) admitLocked(digest string, g *graph.Graph) {
	if rg, ok := s.resident[digest]; ok {
		s.lruSeq++
		rg.seq = s.lruSeq
		return
	}
	size := g.MemoryBytes()
	if s.budget > 0 && size > s.budget {
		return
	}
	s.lruSeq++
	s.resident[digest] = &residentGraph{g: g, bytes: size, seq: s.lruSeq}
	s.residentBytes += size
	if s.budget <= 0 {
		return
	}
	for s.residentBytes > s.budget {
		victim := ""
		var oldest int64
		for d, rg := range s.resident {
			if d == digest {
				continue
			}
			if victim == "" || rg.seq < oldest {
				victim, oldest = d, rg.seq
			}
		}
		if victim == "" {
			return
		}
		s.residentBytes -= s.resident[victim].bytes
		delete(s.resident, victim)
		s.evictions.Add(1)
	}
}

// dropGraph removes a damaged graph: blob, residency, aliases, its
// ordering artifacts, and the manifest records. Lineages containing
// the digest heal first, so a corrupt tip repoints its name to the
// previous version instead of erasing the whole history.
func (s *Store) dropGraph(digest string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rg, ok := s.resident[digest]; ok {
		s.residentBytes -= rg.bytes
		delete(s.resident, digest)
	}
	delete(s.man.Graphs, digest)
	s.healLineagesLocked(digest)
	for name, d := range s.man.Names {
		if d == digest {
			delete(s.man.Names, name)
		}
	}
	for file, rec := range s.man.Orders {
		if rec.Graph == digest {
			os.Remove(filepath.Join(s.dir, ordersDirName, file))
			delete(s.man.Orders, file)
		}
	}
	for file, rec := range s.man.Results {
		if rec.Graph == digest {
			os.Remove(filepath.Join(s.dir, resultsDirName, file))
			delete(s.man.Results, file)
		}
	}
	os.Remove(s.graphPath(digest))
	s.saveManifestLocked()
}

// ---- ordering artifacts -------------------------------------------------

// orderFileName is the artifact naming scheme:
// <graph-digest>-<method>-<options-hash>.
func orderFileName(graphDigest, method, optKey string) string {
	return graphDigest + "-" + method + "-" + optKey
}

// PutOrder persists a computed permutation for (graph, method,
// canonical-options) so future identical jobs are served from disk.
func (s *Store) PutOrder(graphDigest, method, optKey string, perm order.Permutation) error {
	file := orderFileName(graphDigest, method, optKey)
	var n int64
	sum := crc32.NewIEEE()
	err := WriteFileAtomic(filepath.Join(s.dir, ordersDirName, file), 0o644, func(w io.Writer) error {
		cw := &countWriter{w: io.MultiWriter(w, sum)}
		if err := order.WritePermutation(cw, perm); err != nil {
			return err
		}
		n = cw.n
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: persisting ordering %s: %w", file, err)
	}
	now := time.Now().UTC()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.man.Orders[file] = &orderRec{
		Graph: graphDigest, Method: method, OptKey: optKey,
		Bytes: n, CRC32: fmt.Sprintf("%08x", sum.Sum32()),
		Added: now, LastAccess: now,
	}
	return s.saveManifestLocked()
}

// GetOrder looks up a cached permutation. wantLen guards against an
// artifact computed for different content under a colliding key; any
// integrity failure silently invalidates the artifact (it will simply
// be recomputed). The hit/miss counters feed gorderd's
// store_hits_total / store_misses_total metrics.
func (s *Store) GetOrder(graphDigest, method, optKey string, wantLen int) (order.Permutation, bool) {
	file := orderFileName(graphDigest, method, optKey)
	s.mu.Lock()
	rec, ok := s.man.Orders[file]
	if !ok {
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, false
	}
	rec.LastAccess = time.Now().UTC()
	wantCRC := rec.CRC32
	s.mu.Unlock()

	path := filepath.Join(s.dir, ordersDirName, file)
	data, err := os.ReadFile(path)
	if err == nil && fmt.Sprintf("%08x", crc32.ChecksumIEEE(data)) != wantCRC {
		err = errors.New("artifact checksum mismatch")
	}
	var perm order.Permutation
	if err == nil {
		perm, err = order.ReadPermutation(bytes.NewReader(data))
	}
	if err == nil && len(perm) != wantLen {
		err = fmt.Errorf("artifact covers %d vertices, want %d", len(perm), wantLen)
	}
	if err != nil {
		s.mu.Lock()
		delete(s.man.Orders, file)
		os.Remove(path)
		s.saveManifestLocked()
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return perm, true
}

// LatestOrder reports the most recently used ordering artifact stored
// for graphDigest — the "best available ordering" the query tier falls
// back to when a request does not name one. A non-empty method
// restricts the scan to that ordering method (for requests that name
// one explicitly). Ties break on Added time then file name, so the
// choice is deterministic.
func (s *Store) LatestOrder(graphDigest, method string) (string, string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var bestFile string
	var best *orderRec
	for file, rec := range s.man.Orders {
		if rec.Graph != graphDigest || (method != "" && rec.Method != method) {
			continue
		}
		if best == nil ||
			rec.LastAccess.After(best.LastAccess) ||
			(rec.LastAccess.Equal(best.LastAccess) &&
				(rec.Added.After(best.Added) ||
					(rec.Added.Equal(best.Added) && file > bestFile))) {
			best, bestFile = rec, file
		}
	}
	if best == nil {
		return "", "", false
	}
	return best.Method, best.OptKey, true
}

// ---- kernel-result artifacts --------------------------------------------

// resultFileName is the materialized-result naming scheme:
// <graph-digest>-<kernel>-<params-hash>.
func resultFileName(graphDigest, kernel, paramKey string) string {
	return graphDigest + "-" + kernel + "-" + paramKey
}

// PutResult persists an encoded whole-graph kernel result for (graph,
// kernel, canonical-params) so repeat queries survive a restart. data
// is opaque to the store (the query tier owns the codec); integrity is
// the store's CRC.
func (s *Store) PutResult(graphDigest, kernel, paramKey string, data []byte) error {
	s.mu.Lock()
	_, known := s.man.Graphs[graphDigest]
	s.mu.Unlock()
	if !known {
		return fmt.Errorf("%w: %s", ErrUnknownGraph, graphDigest)
	}
	file := resultFileName(graphDigest, kernel, paramKey)
	err := WriteFileAtomic(filepath.Join(s.dir, resultsDirName, file), 0o644, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
	if err != nil {
		return fmt.Errorf("store: persisting result %s: %w", file, err)
	}
	now := time.Now().UTC()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.man.Results[file] = &resultRec{
		Graph: graphDigest, Kernel: kernel, ParamKey: paramKey,
		Bytes: int64(len(data)), CRC32: fmt.Sprintf("%08x", crc32.ChecksumIEEE(data)),
		Added: now, LastAccess: now,
	}
	return s.saveManifestLocked()
}

// GetResult loads a materialized kernel result. Any integrity failure
// silently invalidates the artifact — it is dropped so the query tier
// simply recomputes and re-materializes, mirroring the corrupt-graph
// behaviour.
func (s *Store) GetResult(graphDigest, kernel, paramKey string) ([]byte, bool) {
	file := resultFileName(graphDigest, kernel, paramKey)
	s.mu.Lock()
	rec, ok := s.man.Results[file]
	if !ok {
		s.mu.Unlock()
		s.resultMisses.Add(1)
		return nil, false
	}
	rec.LastAccess = time.Now().UTC()
	wantCRC := rec.CRC32
	s.mu.Unlock()

	path := filepath.Join(s.dir, resultsDirName, file)
	data, err := os.ReadFile(path)
	if err == nil && fmt.Sprintf("%08x", crc32.ChecksumIEEE(data)) != wantCRC {
		err = errors.New("artifact checksum mismatch")
	}
	if err != nil {
		s.mu.Lock()
		delete(s.man.Results, file)
		os.Remove(path)
		s.saveManifestLocked()
		s.mu.Unlock()
		s.resultMisses.Add(1)
		return nil, false
	}
	s.resultHits.Add(1)
	return data, true
}

// ---- metrics ------------------------------------------------------------

// Hits returns the ordering-artifact cache hit count.
func (s *Store) Hits() int64 { return s.hits.Load() }

// Misses returns the ordering-artifact cache miss count.
func (s *Store) Misses() int64 { return s.misses.Load() }

// Evictions returns how many graphs have been evicted from residency.
func (s *Store) Evictions() int64 { return s.evictions.Load() }

// Reloads returns how many graphs were reloaded from disk.
func (s *Store) Reloads() int64 { return s.reloads.Load() }

// ResidentBytes returns the bytes of graphs currently held in memory.
func (s *Store) ResidentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.residentBytes
}

// GraphCount returns the number of stored graphs.
func (s *Store) GraphCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.man.Graphs))
}

// OrderCount returns the number of stored ordering artifacts.
func (s *Store) OrderCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.man.Orders))
}

// ResultCount returns the number of materialized kernel-result artifacts.
func (s *Store) ResultCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.man.Results))
}

// ResultHits returns the materialized-result artifact hit count.
func (s *Store) ResultHits() int64 { return s.resultHits.Load() }

// ResultMisses returns the materialized-result artifact miss count.
func (s *Store) ResultMisses() int64 { return s.resultMisses.Load() }

// countWriter counts bytes on their way to w.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
