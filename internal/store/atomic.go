package store

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file so that a crash at any point leaves
// either the old content or the new content at path, never a torn
// file: the payload goes to a temp file in the same directory (same
// filesystem, so the rename is atomic), is fsynced, and is renamed
// into place. The containing directory is synced best-effort so the
// rename itself survives a power loss. write receives the temp file
// and produces the content.
//
// Every durable artifact in the repo funnels through here: store
// blobs and manifests, gorderd's queued-job manifest, and cmd/gorder's
// graph/permutation outputs.
func WriteFileAtomic(path string, perm os.FileMode, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			os.Remove(tmp)
		}
	}()
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Chmod(perm); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	tmp = "" // renamed away; nothing to clean up
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
