package gorder_test

import (
	"bytes"
	"testing"

	"gorder"
)

// TestEndToEndPipeline exercises the whole public API the way the
// README quick start does: generate → order → apply → run kernels →
// compare cache behaviour.
func TestEndToEndPipeline(t *testing.T) {
	g := gorder.NewWebGraph(3000, 1)
	perm := gorder.Order(g)
	if err := perm.Validate(); err != nil {
		t.Fatal(err)
	}
	fast := gorder.Apply(g, perm)
	if fast.NumEdges() != g.NumEdges() {
		t.Fatal("Apply changed the edge count")
	}

	ranks := gorder.PageRank(fast, 20, 0.85)
	if len(ranks) != g.NumNodes() {
		t.Fatal("PageRank wrong length")
	}
	_, sccs := gorder.SCC(fast)
	_, sccsOrig := gorder.SCC(g)
	if sccs != sccsOrig {
		t.Fatal("relabeling changed SCC count")
	}

	// Compare against a randomly shuffled order — the replication's
	// worst-case baseline. (The "Original" web order already has crawl
	// locality, and at this scale the graph nearly fits in the
	// simulated LLC, so random is the discriminating baseline.)
	shuffled := gorder.Apply(g, gorder.RandomOrder(g, 7))
	before, err := gorder.SimulateCache(shuffled, gorder.KernelPR, gorder.SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	after, err := gorder.SimulateCache(fast, gorder.KernelPR, gorder.SmallCache())
	if err != nil {
		t.Fatal(err)
	}
	if after.L1MissRate() >= before.L1MissRate() {
		t.Errorf("Gorder did not reduce PR L1 miss rate: %.4f → %.4f",
			before.L1MissRate(), after.L1MissRate())
	}
	if after.MissRate() > before.MissRate() {
		t.Errorf("Gorder raised the overall miss rate: %.4f → %.4f",
			before.MissRate(), after.MissRate())
	}
}

func TestAllOrderingsViaFacade(t *testing.T) {
	g := gorder.NewSocialGraph(400, 2)
	perms := map[string]gorder.Permutation{
		"gorder":    gorder.Order(g),
		"custom":    gorder.OrderWithOptions(g, gorder.Options{Window: 3, HubThreshold: 16}),
		"original":  gorder.Original(g),
		"random":    gorder.RandomOrder(g, 9),
		"rcm":       gorder.RCM(g),
		"indegsort": gorder.InDegSort(g),
		"chdfs":     gorder.ChDFS(g),
		"slashburn": gorder.SlashBurn(g),
		"ldg":       gorder.LDG(g, 64),
		"minla":     gorder.MinLA(g, gorder.AnnealOptions{Steps: 500}),
		"minloga":   gorder.MinLogA(g, gorder.AnnealOptions{Steps: 500}),
	}
	for name, p := range perms {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// Gorder maximises its own objective best among the contenders on
	// this structured graph.
	best := gorder.Score(g, perms["gorder"], gorder.DefaultWindow)
	for _, other := range []string{"random", "original"} {
		if s := gorder.Score(g, perms[other], gorder.DefaultWindow); s >= best {
			t.Errorf("gorder score %d not above %s score %d", best, other, s)
		}
	}
}

func TestAllKernelsViaFacade(t *testing.T) {
	g := gorder.NewRMATGraph(9, 6, 3)
	if got := len(gorder.NeighbourQuery(g)); got != g.NumNodes() {
		t.Error("NQ wrong length")
	}
	dist, reached := gorder.BFS(g, 0)
	if len(dist) != g.NumNodes() || reached < 1 {
		t.Error("BFS malformed")
	}
	if len(gorder.BFSAll(g)) != g.NumNodes() || len(gorder.DFSAll(g)) != g.NumNodes() {
		t.Error("traversals incomplete")
	}
	sp := gorder.ShortestPaths(g, 0)
	for i := range sp {
		if dist[i] != sp[i] {
			t.Fatal("SP disagrees with BFS on unit weights")
		}
	}
	set := gorder.DominatingSet(g)
	if len(set) == 0 {
		t.Error("empty dominating set")
	}
	if len(gorder.CoreNumbers(g)) != g.NumNodes() {
		t.Error("Kcore wrong length")
	}
	if gorder.Diameter(g, 3, 1) < 1 {
		t.Error("implausible diameter")
	}
}

func TestIORoundTripViaFacade(t *testing.T) {
	g := gorder.NewUniformGraph(100, 300, 4)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := gorder.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("binary round trip via facade failed")
	}
	var txt bytes.Buffer
	if err := g.WriteEdgeList(&txt); err != nil {
		t.Fatal(err)
	}
	if _, err := gorder.ReadEdgeList(&txt); err != nil {
		t.Fatal(err)
	}
}

func TestCostMetricsViaFacade(t *testing.T) {
	g := gorder.NewGridGraph(10, 10)
	id := gorder.Original(g)
	if gorder.Bandwidth(g, id) != 10 {
		t.Errorf("grid bandwidth = %d, want 10", gorder.Bandwidth(g, id))
	}
	rcm := gorder.RCM(g)
	if gorder.Bandwidth(g, rcm) > gorder.Bandwidth(g, gorder.RandomOrder(g, 1)) {
		t.Error("RCM bandwidth above random")
	}
	if gorder.LinearCost(g, id) <= 0 || gorder.LogCost(g, id) <= 0 {
		t.Error("cost metrics non-positive on grid")
	}
	stats := gorder.ComputeStats(g)
	if stats.Nodes != 100 {
		t.Errorf("stats nodes = %d", stats.Nodes)
	}
}

func TestSimulateCacheUnknownKernel(t *testing.T) {
	g := gorder.NewUniformGraph(10, 20, 1)
	if _, err := gorder.SimulateCache(g, "nope", gorder.SmallCache()); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestSimulateAllKernels(t *testing.T) {
	g := gorder.NewSocialGraph(300, 5)
	for _, k := range []string{
		gorder.KernelNQ, gorder.KernelBFS, gorder.KernelDFS, gorder.KernelSCC,
		gorder.KernelSP, gorder.KernelPR, gorder.KernelDS, gorder.KernelKcore,
		gorder.KernelDiam,
	} {
		rep, err := gorder.SimulateCache(g, k, gorder.SmallCache())
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if rep.Accesses == 0 {
			t.Errorf("%s: no accesses recorded", k)
		}
	}
}

func TestIncrementalViaFacade(t *testing.T) {
	g := gorder.NewSocialGraph(500, 3)
	base := gorder.Order(g)
	// Grow: re-create a larger graph embedding g's edges.
	var edges []gorder.Edge
	g.Edges(func(u, v gorder.NodeID) bool {
		edges = append(edges, gorder.Edge{From: u, To: v})
		return true
	})
	for v := gorder.NodeID(500); v < 600; v++ {
		edges = append(edges, gorder.Edge{From: v, To: v % 500})
	}
	g2 := gorder.FromEdgesDedup(600, edges)
	p, err := gorder.OrderIncremental(g2, base, gorder.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 500; u++ {
		if p[u] != base[u] {
			t.Fatal("incremental moved an old vertex")
		}
	}
}

func TestCompressionViaFacade(t *testing.T) {
	g := gorder.NewWebGraph(4000, 9)
	random := gorder.Apply(g, gorder.RandomOrder(g, 2))
	ordered := gorder.Apply(g, gorder.Order(g))
	if gorder.CompressedSize(ordered) >= gorder.CompressedSize(random) {
		t.Error("ordering did not shrink the gap encoding")
	}
	if gorder.CompressedBitsPerEdge(ordered) <= 0 {
		t.Error("implausible bits/edge")
	}
}

func TestProfileReuseViaFacade(t *testing.T) {
	g := gorder.NewSocialGraph(3000, 4)
	caps := []int64{64, 512, 4096}
	randomised := gorder.Apply(g, gorder.RandomOrder(g, 3))
	ordered := gorder.Apply(g, gorder.Order(g))
	pr, err := gorder.ProfileReuse(randomised, gorder.KernelPR, caps...)
	if err != nil {
		t.Fatal(err)
	}
	po, err := gorder.ProfileReuse(ordered, gorder.KernelPR, caps...)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Total == 0 || po.Total == 0 {
		t.Fatal("empty profiles")
	}
	// The ordering's whole effect: shorter reuse distances.
	if po.MeanDistance() >= pr.MeanDistance() {
		t.Errorf("mean reuse distance not reduced: %.0f → %.0f",
			pr.MeanDistance(), po.MeanDistance())
	}
	// And therefore fewer modelled misses at L1-like capacity, the
	// range the window optimisation targets.
	if po.MissRatio(0) >= pr.MissRatio(0) {
		t.Errorf("modelled miss ratio not reduced: %.4f → %.4f",
			pr.MissRatio(0), po.MissRatio(0))
	}
	if _, err := gorder.ProfileReuse(g, "nope"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestParallelViaFacade(t *testing.T) {
	g := gorder.NewWebGraph(2000, 8)
	p := gorder.OrderParallel(g, gorder.Options{}, 4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	w := gorder.DefaultWindow
	if gorder.Score(g, p, w) <= gorder.Score(g, gorder.RandomOrder(g, 1), w) {
		t.Error("parallel ordering no better than random")
	}
}

func TestExtraKernelsViaFacade(t *testing.T) {
	g := gorder.NewCommunityGraph(600, 6, 8, 1, 2)
	comp, count := gorder.WCC(g)
	if len(comp) != g.NumNodes() || count < 1 {
		t.Error("WCC malformed")
	}
	if gorder.TriangleCount(g) < 1 {
		t.Error("no triangles in a dense community graph")
	}
	labels, communities := gorder.LabelPropagation(g, 0)
	if len(labels) != g.NumNodes() || communities < 1 {
		t.Error("label propagation malformed")
	}
	for _, k := range []string{gorder.KernelWCC, gorder.KernelTriangles, gorder.KernelLabelProp} {
		rep, err := gorder.SimulateCache(g, k, gorder.SmallCache())
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if rep.Accesses == 0 {
			t.Errorf("%s: no accesses", k)
		}
	}
}

func TestWeightedAndCentralityViaFacade(t *testing.T) {
	g := gorder.NewSocialGraph(300, 11)
	w := gorder.RandomWeights(g, 8, 2)
	dj := gorder.DijkstraWeighted(g, w, 0)
	bf, ok := gorder.BellmanFordWeighted(g, w, 0)
	if !ok {
		t.Fatal("unexpected negative cycle")
	}
	for i := range dj {
		if dj[i] != bf[i] {
			t.Fatal("Dijkstra and Bellman-Ford disagree")
		}
	}
	bc := gorder.Betweenness(g, 20, 1)
	if len(bc) != g.NumNodes() {
		t.Fatal("betweenness malformed")
	}
	mlp := gorder.MultilevelOrder(g, gorder.Options{}, 64)
	if err := mlp.Validate(); err != nil {
		t.Fatal(err)
	}
	mlr := gorder.Multilevel(g, gorder.MultilevelOptions{CoarsenTo: 32})
	if err := mlr.Validate(); err != nil {
		t.Fatal(err)
	}
	dob, _ := gorder.DOBFS(g, 0)
	bfs, _ := gorder.BFS(g, 0)
	for i := range dob {
		if dob[i] != bfs[i] {
			t.Fatal("DOBFS disagrees with BFS")
		}
	}
}
