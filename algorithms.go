package gorder

import "gorder/internal/algos"

// The paper's nine benchmark kernels, exposed for direct use. All of
// them run unmodified on any vertex order — that is the point: the
// ordering changes their speed, not their code or results.

// NeighbourQuery computes, for every vertex, the sum of the
// out-degrees of its out-neighbours (the paper's NQ kernel).
func NeighbourQuery(g *Graph) []int64 { return algos.NeighbourQuery(g) }

// BFS runs a breadth-first search from src over out-edges and returns
// hop distances (-1 where unreachable) and the number of vertices
// reached.
func BFS(g *Graph, src NodeID) (dist []int32, reached int) { return algos.BFSFrom(g, src) }

// BFSAll traverses the whole graph breadth-first (restarting at the
// lowest unvisited vertex) and returns the visit sequence.
func BFSAll(g *Graph) []NodeID { return algos.BFSAll(g) }

// DFSAll traverses the whole graph depth-first (preorder) and returns
// the visit sequence.
func DFSAll(g *Graph) []NodeID { return algos.DFSAll(g) }

// SCC computes strongly connected components (Tarjan) and returns the
// component of each vertex plus the component count.
func SCC(g *Graph) (comp []int32, count int) { return algos.SCC(g) }

// ShortestPaths computes unit-weight shortest paths from src with the
// paper's Bellman–Ford kernel (-1 where unreachable).
func ShortestPaths(g *Graph, src NodeID) []int32 { return algos.BellmanFord(g, src) }

// PageRank runs power-iteration PageRank (pull form) for iters
// iterations with the given damping factor; ranks sum to 1.
func PageRank(g *Graph, iters int, damping float64) []float64 {
	return algos.PageRank(g, iters, damping)
}

// DominatingSet computes a greedy dominating set: every vertex is in
// the set or an out-neighbour of a member.
func DominatingSet(g *Graph) []NodeID { return algos.DominatingSet(g) }

// CoreNumbers computes the k-core decomposition over total degree.
func CoreNumbers(g *Graph) []int32 { return algos.CoreNumbers(g) }

// Diameter estimates the diameter by running ShortestPaths from
// `samples` random sources and keeping the largest finite distance.
func Diameter(g *Graph, samples int, seed uint64) int32 { return algos.Diameter(g, samples, seed) }

// WCC computes weakly connected components (directions ignored) and
// returns each vertex's component plus the component count.
func WCC(g *Graph) (comp []int32, count int) { return algos.WCC(g) }

// TriangleCount counts the triangles of g's undirected view.
func TriangleCount(g *Graph) int64 { return algos.TriangleCount(g) }

// LabelPropagation runs deterministic label-propagation community
// detection (maxIters <= 0 selects the default bound) and returns
// dense community labels plus the community count.
func LabelPropagation(g *Graph, maxIters int) (labels []int32, communities int) {
	return algos.LabelPropagation(g, maxIters)
}

// DOBFS runs a direction-optimising BFS (Beamer-style top-down /
// bottom-up switching) from src, returning the same distances as BFS
// with far fewer edge examinations on low-diameter graphs.
func DOBFS(g *Graph, src NodeID) (dist []int32, reached int) { return algos.DOBFS(g, src) }

// RandomWeights returns deterministic per-edge weights in
// [1, maxWeight] aligned with g's CSR edge order, hashed from edge
// endpoints so the same logical edge always gets the same weight.
func RandomWeights(g *Graph, maxWeight int32, seed uint64) []int32 {
	return algos.RandomWeights(g, maxWeight, seed)
}

// DijkstraWeighted computes single-source shortest paths over
// non-negative weights (aligned with the CSR edge order); -1 marks
// unreachable vertices.
func DijkstraWeighted(g *Graph, weights []int32, src NodeID) []int64 {
	return algos.DijkstraWeighted(g, weights, src)
}

// BellmanFordWeighted computes single-source shortest paths by
// relaxation sweeps (negative edges allowed); ok is false if a
// reachable negative cycle exists.
func BellmanFordWeighted(g *Graph, weights []int32, src NodeID) (dist []int64, ok bool) {
	return algos.BellmanFordWeighted(g, weights, src)
}

// Betweenness approximates betweenness centrality (Brandes–Pich) from
// `samples` random sources; samples >= NumNodes computes it exactly.
func Betweenness(g *Graph, samples int, seed uint64) []float64 {
	return algos.Betweenness(g, samples, seed)
}

// BetweennessExact computes exact betweenness centrality over
// unit-weight directed shortest paths (Brandes, O(n·m)).
func BetweennessExact(g *Graph) []float64 { return algos.BetweennessExact(g) }
