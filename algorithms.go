package gorder

import (
	"context"

	"gorder/internal/algos"
	"gorder/internal/exec"
)

// The paper's nine benchmark kernels, exposed for direct use. All of
// them run unmodified on any vertex order — that is the point: the
// ordering changes their speed, not their code or results.

// NeighbourQuery computes, for every vertex, the sum of the
// out-degrees of its out-neighbours (the paper's NQ kernel).
func NeighbourQuery(g *Graph) []int64 { return algos.NeighbourQuery(g) }

// BFS runs a breadth-first search from src over out-edges and returns
// hop distances (-1 where unreachable) and the number of vertices
// reached.
func BFS(g *Graph, src NodeID) (dist []int32, reached int) { return algos.BFSFrom(g, src) }

// BFSAll traverses the whole graph breadth-first (restarting at the
// lowest unvisited vertex) and returns the visit sequence.
func BFSAll(g *Graph) []NodeID { return algos.BFSAll(g) }

// DFSAll traverses the whole graph depth-first (preorder) and returns
// the visit sequence.
func DFSAll(g *Graph) []NodeID { return algos.DFSAll(g) }

// SCC computes strongly connected components (Tarjan) and returns the
// component of each vertex plus the component count.
func SCC(g *Graph) (comp []int32, count int) { return algos.SCC(g) }

// ShortestPaths computes unit-weight shortest paths from src with the
// paper's Bellman–Ford kernel (-1 where unreachable).
func ShortestPaths(g *Graph, src NodeID) []int32 { return algos.BellmanFord(g, src) }

// PageRank runs power-iteration PageRank (pull form) for iters
// iterations with the given damping factor; ranks sum to 1.
func PageRank(g *Graph, iters int, damping float64) []float64 {
	return algos.PageRank(g, iters, damping)
}

// DominatingSet computes a greedy dominating set: every vertex is in
// the set or an out-neighbour of a member.
func DominatingSet(g *Graph) []NodeID { return algos.DominatingSet(g) }

// CoreNumbers computes the k-core decomposition over total degree.
func CoreNumbers(g *Graph) []int32 { return algos.CoreNumbers(g) }

// Diameter estimates the diameter by running ShortestPaths from
// `samples` random sources and keeping the largest finite distance.
func Diameter(g *Graph, samples int, seed uint64) int32 { return algos.Diameter(g, samples, seed) }

// WCC computes weakly connected components (directions ignored) and
// returns each vertex's component plus the component count.
func WCC(g *Graph) (comp []int32, count int) { return algos.WCC(g) }

// TriangleCount counts the triangles of g's undirected view.
func TriangleCount(g *Graph) int64 { return algos.TriangleCount(g) }

// LabelPropagation runs deterministic label-propagation community
// detection (maxIters <= 0 selects the default bound) and returns
// dense community labels plus the community count.
func LabelPropagation(g *Graph, maxIters int) (labels []int32, communities int) {
	return algos.LabelPropagation(g, maxIters)
}

// DOBFS runs a direction-optimising BFS (Beamer-style top-down /
// bottom-up switching) from src, returning the same distances as BFS
// with far fewer edge examinations on low-diameter graphs.
func DOBFS(g *Graph, src NodeID) (dist []int32, reached int) { return algos.DOBFS(g, src) }

// RandomWeights returns deterministic per-edge weights in
// [1, maxWeight] aligned with g's CSR edge order, hashed from edge
// endpoints so the same logical edge always gets the same weight.
func RandomWeights(g *Graph, maxWeight int32, seed uint64) []int32 {
	return algos.RandomWeights(g, maxWeight, seed)
}

// DijkstraWeighted computes single-source shortest paths over
// non-negative weights (aligned with the CSR edge order); -1 marks
// unreachable vertices.
func DijkstraWeighted(g *Graph, weights []int32, src NodeID) []int64 {
	return algos.DijkstraWeighted(g, weights, src)
}

// BellmanFordWeighted computes single-source shortest paths by
// relaxation sweeps (negative edges allowed); ok is false if a
// reachable negative cycle exists.
func BellmanFordWeighted(g *Graph, weights []int32, src NodeID) (dist []int64, ok bool) {
	return algos.BellmanFordWeighted(g, weights, src)
}

// Betweenness approximates betweenness centrality (Brandes–Pich) from
// `samples` random sources; samples >= NumNodes computes it exactly.
func Betweenness(g *Graph, samples int, seed uint64) []float64 {
	return algos.Betweenness(g, samples, seed)
}

// BetweennessExact computes exact betweenness centrality over
// unit-weight directed shortest paths (Brandes, O(n·m)).
func BetweennessExact(g *Graph) []float64 { return algos.BetweennessExact(g) }

// ---- parallel kernels ---------------------------------------------------
//
// The multicore variants run on the internal/exec engine: the vertex
// space is partitioned into contiguous chunks of the current ordering,
// so each worker's working set is a Gorder-localized window and the
// cache wins compound with the parallelism. workers <= 0 selects
// GOMAXPROCS. Results are identical to the serial kernels above at any
// worker count (bit-identical distances, counts, and — because the
// only cross-range float reduction is kept serial — PageRank values),
// so callers may switch between serial and parallel freely. The ctx
// deadline is polled between work chunks; cancellation returns
// ctx.Err() with a nil result.

// PageRankParallel is the multicore PageRank; its ranks equal
// PageRank's bit for bit.
func PageRankParallel(ctx context.Context, g *Graph, iters int, damping float64, workers int) ([]float64, error) {
	return exec.PageRank(ctx, g, iters, damping, workers, nil)
}

// DOBFSParallel is the multicore direction-optimizing BFS; distances
// equal DOBFS's (and BFS's) bit for bit.
func DOBFSParallel(ctx context.Context, g *Graph, src NodeID, workers int) (dist []int32, reached int, err error) {
	return exec.DOBFS(ctx, g, src, workers, nil)
}

// ShortestPathsParallel is the multicore unit-weight SSSP
// (delta-stepping with delta = 1); distances equal ShortestPaths's.
func ShortestPathsParallel(ctx context.Context, g *Graph, src NodeID, workers int) ([]int32, error) {
	return exec.ShortestPaths(ctx, g, src, workers, nil)
}

// DeltaStepping is the multicore weighted SSSP (Meyer–Sanders
// delta-stepping with lazy buckets). weights aligns with the CSR
// out-adjacency as in DijkstraWeighted; nil means unit weights;
// delta <= 0 picks the average edge weight. Distances equal
// DijkstraWeighted's exactly.
func DeltaStepping(ctx context.Context, g *Graph, weights []int32, src NodeID, delta int64, workers int) ([]int64, error) {
	return exec.DeltaStepping(ctx, g, weights, src, delta, workers, nil)
}

// TriangleCountParallel is the multicore triangle count; it equals
// TriangleCount exactly.
func TriangleCountParallel(ctx context.Context, g *Graph, workers int) (int64, error) {
	return exec.TriangleCount(ctx, g, workers, nil)
}
