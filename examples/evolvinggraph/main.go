// Evolvinggraph: keep a growing, churning social network's vertex
// order cache-friendly without re-running the full Gorder computation
// on every batch of changes — the evolving-graph scenario the papers'
// discussion sections raise, and the lifecycle gorderd automates
// behind POST /graphs/{name}/edges.
//
// Each "day" some users join, follow others, and unfollow a few. The
// batch is applied with gorder.ApplyEdits, the existing permutation is
// extended in place with OrderIncrementalCtx, and F(pi) is maintained
// with ScoreDelta — never rescored from scratch. When the
// edge-normalised score density decays below a threshold of its
// baseline, everything placed since the last full ordering is
// re-placed jointly (the daemon's repair job); a full recompute runs
// only to report the retention ratio.
//
//	go run ./examples/evolvinggraph [-users 30000] [-days 6]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"gorder"
)

const decayThreshold = 0.93

func main() {
	users := flag.Int("users", 30_000, "initial user count")
	days := flag.Int("days", 6, "mutation batches to apply")
	flag.Parse()

	// Day 0: the network is ordered once, establishing the quality
	// baseline the decay monitor measures against.
	g := gorder.NewSocialGraph(*users, 5)
	w := gorder.DefaultWindow
	t0 := time.Now()
	perm := gorder.Order(g)
	fullCost := time.Since(t0)
	f := gorder.Score(g, perm, w)
	baseDensity := float64(f) / float64(g.NumEdges())
	cleanNodes := g.NumNodes()
	fmt.Printf("day 0: %d users, full Gorder in %v (F = %d, packing %.2f)\n",
		g.NumNodes(), fullCost.Round(time.Millisecond), f,
		gorder.PackingFactor(g, perm))

	rng := rngState(5)
	for day := 1; day <= *days; day++ {
		add, del, newUsers := dailyBatch(&rng, g)
		g2, st, err := gorder.ApplyEdits(g, newUsers, add, del)
		if err != nil {
			log.Fatalf("day %d: %v", day, err)
		}

		// Extend the order to the new version without moving anyone,
		// and roll F forward in time proportional to the batch.
		t1 := time.Now()
		perm2, err := gorder.OrderIncrementalCtx(context.Background(), g2, perm, nil, gorder.Options{})
		if err != nil {
			log.Fatalf("day %d: %v", day, err)
		}
		f += gorder.ScoreDelta(g, g2, perm2, w, add, del)
		extCost := time.Since(t1)

		decay := (float64(f) / float64(g2.NumEdges())) / baseDensity
		fmt.Printf("day %d: +%d users, +%d/-%d follows | extended in %v | F=%d decay=%.3f",
			day, newUsers, st.Added, st.Deleted, extCost.Round(time.Microsecond), f, decay)

		g, perm = g2, perm2
		if decay >= decayThreshold {
			fmt.Println()
			continue
		}

		// Decayed: re-place everything ordered since the baseline,
		// jointly — gorderd's incremental repair job.
		var dirty []gorder.NodeID
		for v := cleanNodes; v < g.NumNodes(); v++ {
			dirty = append(dirty, gorder.NodeID(v))
		}
		t2 := time.Now()
		repaired, err := gorder.OrderIncrementalCtx(context.Background(), g, perm, dirty, gorder.Options{})
		if err != nil {
			log.Fatalf("day %d repair: %v", day, err)
		}
		repCost := time.Since(t2)

		t3 := time.Now()
		fullPerm := gorder.Order(g)
		fullCost := time.Since(t3)
		fRep := gorder.Score(g, repaired, w)
		fFull := gorder.Score(g, fullPerm, w)
		fmt.Printf(" → repair %d vertices in %v: F=%d (%.1f%% of full recompute, %.0fx cheaper)\n",
			len(dirty), repCost.Round(time.Microsecond), fRep,
			100*float64(fRep)/float64(fFull), float64(fullCost)/float64(repCost))
		perm, f = repaired, fRep
	}
	fmt.Println("\n(old users keep their IDs across days — external indexes stay valid)")
}

// dailyBatch builds one day's deterministic mutation batch: new users
// following existing ones (with some follow-backs), plus a sprinkle of
// unfollows among the existing edges.
func dailyBatch(state *uint64, g *gorder.Graph) (add, del []gorder.Edge, newUsers int) {
	n := g.NumNodes()
	newUsers = n * 2 / 100
	next := func(mod int) int {
		*state ^= *state << 13
		*state ^= *state >> 7
		*state ^= *state << 17
		return int(*state % uint64(mod))
	}
	for v := n; v < n+newUsers; v++ {
		follows := 2 + next(4)
		for j := 0; j < follows; j++ {
			t := gorder.NodeID(next(v))
			add = append(add, gorder.Edge{From: gorder.NodeID(v), To: t})
			if next(3) == 0 {
				add = append(add, gorder.Edge{From: t, To: gorder.NodeID(v)})
			}
		}
	}
	// Unfollow ~0.5% of existing edges.
	quota := int(g.NumEdges() / 200)
	g.Edges(func(u, v gorder.NodeID) bool {
		if quota > 0 && next(200) == 0 {
			del = append(del, gorder.Edge{From: u, To: v})
			quota--
		}
		return true
	})
	return add, del, newUsers
}

func rngState(seed uint64) uint64 {
	return seed*0x9E3779B97F4A7C15 + 12345
}
