// Evolvinggraph: keep a growing social network's vertex order
// cache-friendly without re-running the full Gorder computation on
// every batch of new users — the evolving-graph scenario the papers'
// discussion sections raise.
//
//	go run ./examples/evolvinggraph
package main

import (
	"fmt"
	"time"

	"gorder"
)

func main() {
	// Day 0: a social network with 30k users, ordered once.
	g := gorder.NewSocialGraph(30_000, 5)
	t0 := time.Now()
	perm := gorder.Order(g)
	fullCost := time.Since(t0)
	fmt.Printf("day 0: %d users, full Gorder in %v (F = %d)\n",
		g.NumNodes(), fullCost.Round(time.Millisecond),
		gorder.Score(g, perm, gorder.DefaultWindow))

	// Each "day", 3% new users join and follow a few existing ones.
	for day := 1; day <= 3; day++ {
		g2, grown := grow(g, g.NumNodes()*3/100, uint64(day))
		t1 := time.Now()
		permInc := gorder.OrderIncremental(g2, perm, gorder.Options{})
		incCost := time.Since(t1)

		t2 := time.Now()
		permFull := gorder.Order(g2)
		fullCost := time.Since(t2)

		w := gorder.DefaultWindow
		fmt.Printf("day %d: +%d users | incremental %-8v F=%d | full %-8v F=%d | update is %.0fx cheaper\n",
			day, grown,
			incCost.Round(time.Millisecond), gorder.Score(g2, permInc, w),
			fullCost.Round(time.Millisecond), gorder.Score(g2, permFull, w),
			float64(fullCost)/float64(incCost))

		g, perm = g2, permInc
	}
	fmt.Println("\n(old users keep their IDs across days — external indexes stay valid)")
}

// grow returns a copy of g with extra new vertices appended, each
// following a few existing users (with some follow-backs).
func grow(g *gorder.Graph, extra int, seed uint64) (*gorder.Graph, int) {
	n := g.NumNodes()
	var edges []gorder.Edge
	g.Edges(func(u, v gorder.NodeID) bool {
		edges = append(edges, gorder.Edge{From: u, To: v})
		return true
	})
	// Deterministic pseudo-random follows derived from the seed.
	state := seed*0x9E3779B97F4A7C15 + 12345
	next := func(mod int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(mod))
	}
	for v := n; v < n+extra; v++ {
		follows := 2 + next(4)
		for j := 0; j < follows; j++ {
			t := gorder.NodeID(next(v))
			edges = append(edges, gorder.Edge{From: gorder.NodeID(v), To: t})
			if next(3) == 0 {
				edges = append(edges, gorder.Edge{From: t, To: gorder.NodeID(v)})
			}
		}
	}
	return gorder.FromEdgesDedup(n+extra, edges), extra
}
