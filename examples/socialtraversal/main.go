// Socialtraversal: a social-network analysis scenario — degrees of
// separation (BFS), influencer cores (k-core), and communities that
// can all reach each other (SCC) — comparing how different vertex
// orderings serve traversal-heavy workloads.
//
// The replication found that RCM (a BFS-shaped ordering) can match or
// beat Gorder on BFS-shaped kernels; this example lets you watch that
// effect live.
//
//	go run ./examples/socialtraversal
package main

import (
	"fmt"
	"time"

	"gorder"
)

func main() {
	g := gorder.NewSocialGraph(50_000, 99)
	fmt.Println("network:", gorder.ComputeStats(g))

	// Pick the best-connected user as the BFS source.
	hub := gorder.NodeID(0)
	for v := 1; v < g.NumNodes(); v++ {
		if g.Degree(gorder.NodeID(v)) > g.Degree(hub) {
			hub = gorder.NodeID(v)
		}
	}
	dist, reached := gorder.BFS(g, hub)
	hist := map[int32]int{}
	for _, d := range dist {
		if d >= 0 {
			hist[d]++
		}
	}
	fmt.Printf("\ndegrees of separation from user %d (%d reachable):\n", hub, reached)
	for d := int32(0); int(d) < len(hist); d++ {
		if c, ok := hist[d]; ok {
			fmt.Printf("  %d hops: %d users\n", d, c)
		}
	}

	cores := gorder.CoreNumbers(g)
	maxCore := int32(0)
	for _, c := range cores {
		if c > maxCore {
			maxCore = c
		}
	}
	inner := 0
	for _, c := range cores {
		if c == maxCore {
			inner++
		}
	}
	fmt.Printf("\ninfluencer core: k = %d with %d members\n", maxCore, inner)

	_, sccs := gorder.SCC(g)
	fmt.Printf("mutual-reachability communities: %d\n", sccs)

	// --- Ordering shoot-out on traversal kernels -----------------------
	fmt.Println("\ntraversal time by ordering (BFS-all / DFS-all / 30 SP runs):")
	orderings := []struct {
		name string
		perm gorder.Permutation
	}{
		{"Original", gorder.Original(g)},
		{"Random", gorder.RandomOrder(g, 5)},
		{"RCM", gorder.RCM(g)},
		{"ChDFS", gorder.ChDFS(g)},
		{"Gorder", gorder.Order(g)},
	}
	for _, o := range orderings {
		h := gorder.Apply(g, o.perm)
		bfs := timed(func() { gorder.BFSAll(h) })
		dfs := timed(func() { gorder.DFSAll(h) })
		sp := timed(func() { gorder.Diameter(h, 30, 1) })
		fmt.Printf("  %-9s BFS %-8v DFS %-8v SP×30 %v\n",
			o.name, bfs.Round(time.Millisecond), dfs.Round(time.Millisecond),
			sp.Round(time.Millisecond))
	}
}

func timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
