// Quickstart: reorder a graph with Gorder and watch PageRank get
// faster and miss the cache less.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"gorder"
)

func main() {
	// A synthetic web graph: 40k pages, power-law in-degrees, crawl
	// locality in the original numbering.
	g := gorder.NewWebGraph(40_000, 7)
	s := gorder.ComputeStats(g)
	fmt.Printf("graph: %d nodes, %d edges (avg degree %.1f)\n\n", s.Nodes, s.Edges, s.AvgDegree)

	// Compute the Gorder permutation (window w = 5, the paper's
	// default) and relabel the graph with it.
	t0 := time.Now()
	perm := gorder.Order(g)
	fmt.Printf("Gorder computed in %v\n", time.Since(t0).Round(time.Millisecond))
	fast := gorder.Apply(g, perm)

	// The ordering quality, in the paper's own metric.
	fmt.Printf("locality score F:  original %d → gorder %d\n\n",
		gorder.Score(g, gorder.Original(g), gorder.DefaultWindow),
		gorder.Score(g, perm, gorder.DefaultWindow))

	// Same algorithm, same results, different speed.
	const iters = 30
	time1 := timePageRank(g, iters)
	time2 := timePageRank(fast, iters)
	fmt.Printf("PageRank ×%d:      original %v → gorder %v (%.2fx)\n",
		iters, time1.Round(time.Millisecond), time2.Round(time.Millisecond),
		float64(time1)/float64(time2))

	// And the reason, measured with the cache simulator.
	before, _ := gorder.SimulateCache(g, gorder.KernelPR, gorder.SmallCache())
	after, _ := gorder.SimulateCache(fast, gorder.KernelPR, gorder.SmallCache())
	fmt.Printf("simulated L1 miss: original %.1f%% → gorder %.1f%%\n",
		100*before.L1MissRate(), 100*after.L1MissRate())
	fmt.Printf("simulated RAM hit: original %.1f%% → gorder %.1f%%\n",
		100*before.MissRate(), 100*after.MissRate())
}

func timePageRank(g *gorder.Graph, iters int) time.Duration {
	start := time.Now()
	gorder.PageRank(g, iters, 0.85)
	return time.Since(start)
}
