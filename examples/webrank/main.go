// Webrank: a web-analytics pipeline on a hyperlink graph — rank pages
// with PageRank, find the largest strongly connected "core of the
// web", and decide whether reordering pays for itself.
//
// The paper's follow-up literature (Balaji & Lucia, IISWC'18) points
// out that an expensive ordering like Gorder only pays off when the
// graph is processed many times. This example measures exactly that
// trade-off: ordering cost vs per-run savings → break-even run count.
//
//	go run ./examples/webrank
package main

import (
	"cmp"
	"fmt"
	"slices"
	"time"

	"gorder"
)

func main() {
	g := gorder.NewWebGraph(60_000, 2026)
	fmt.Println("crawl:", gorder.ComputeStats(g))

	// --- Analytics on the raw crawl order -----------------------------
	start := time.Now()
	ranks := gorder.PageRank(g, 50, 0.85)
	prTime := time.Since(start)

	type page struct {
		id   gorder.NodeID
		rank float64
	}
	top := make([]page, 0, len(ranks))
	for id, r := range ranks {
		top = append(top, page{gorder.NodeID(id), r})
	}
	slices.SortFunc(top, func(a, b page) int { return cmp.Compare(b.rank, a.rank) })
	fmt.Println("\ntop pages by PageRank:")
	for _, p := range top[:5] {
		fmt.Printf("  page %-6d rank %.5f (in-degree %d)\n", p.id, p.rank, g.InDegree(p.id))
	}

	comp, count := gorder.SCC(g)
	sizes := make(map[int32]int)
	for _, c := range comp {
		sizes[c]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("\nweb structure: %d SCCs; largest core has %d pages (%.1f%%)\n",
		count, largest, 100*float64(largest)/float64(g.NumNodes()))

	// --- Does reordering pay off? --------------------------------------
	fmt.Println("\nreordering trade-off (50-iteration PageRank runs):")
	for _, method := range []struct {
		name    string
		compute func() gorder.Permutation
	}{
		{"InDegSort", func() gorder.Permutation { return gorder.InDegSort(g) }},
		{"RCM", func() gorder.Permutation { return gorder.RCM(g) }},
		{"Gorder", func() gorder.Permutation { return gorder.Order(g) }},
	} {
		t0 := time.Now()
		perm := method.compute()
		orderCost := time.Since(t0)
		fast := gorder.Apply(g, perm)
		t1 := time.Now()
		gorder.PageRank(fast, 50, 0.85)
		fastPR := time.Since(t1)
		saving := prTime - fastPR
		breakEven := "never (no speedup)"
		if saving > 0 {
			breakEven = fmt.Sprintf("%d runs", 1+int(orderCost/saving))
		}
		fmt.Printf("  %-10s order %-8v PR %-8v saves %-8v/run → pays off after %s\n",
			method.name, orderCost.Round(time.Millisecond), fastPR.Round(time.Millisecond),
			saving.Round(time.Millisecond), breakEven)
	}
	fmt.Printf("  (baseline PR on crawl order: %v)\n", prTime.Round(time.Millisecond))
}
