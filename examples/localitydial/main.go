// Localitydial: how much locality can an ordering recover? The
// Watts–Strogatz rewiring probability beta destroys the original
// order's intrinsic locality by degrees; this example measures, at
// each beta, the locality score and the simulated PageRank L1 miss
// rate for the Original order, Gorder, and RCM (whose bandwidth
// objective is exactly right for lattices) — the experiment behind
// `bench -exp dial`.
//
//	go run ./examples/localitydial
package main

import (
	"fmt"

	"gorder"
)

func main() {
	const (
		n = 15_000
		k = 8
	)
	fmt.Printf("Watts–Strogatz n=%d k=%d; PageRank under the simulated small hierarchy\n\n", n, k)
	fmt.Printf("%-5s  %12s %12s  %10s %10s %10s\n",
		"beta", "F(original)", "F(gorder)", "L1 orig", "L1 gorder", "L1 rcm")
	for _, beta := range []float64{0, 0.2, 0.5, 1.0} {
		g := gorder.NewSmallWorldGraph(n, k, beta, 7)
		gord := gorder.Order(g)
		rcm := gorder.RCM(g)
		w := gorder.DefaultWindow

		l1 := func(h *gorder.Graph) float64 {
			rep, err := gorder.SimulateCache(h, gorder.KernelPR, gorder.SmallCache())
			if err != nil {
				panic(err)
			}
			return rep.L1MissRate()
		}
		fmt.Printf("%-5.1f  %12d %12d  %9.1f%% %9.1f%% %9.1f%%\n",
			beta,
			gorder.Score(g, gorder.Original(g), w),
			gorder.Score(g, gord, w),
			100*l1(g),
			100*l1(gorder.Apply(g, gord)),
			100*l1(gorder.Apply(g, rcm)),
		)
	}
	fmt.Println("\nreading: at beta=0 the lattice order is already optimal and nothing can")
	fmt.Println("improve it. While remnants of the lattice survive (mid beta), the original")
	fmt.Println("order stays hard to beat — the general form of the papers' observation that")
	fmt.Println("web crawls' own order performs well. Once locality is fully destroyed")
	fmt.Println("(beta=1), Gorder rebuilds a large score from nothing and wins on misses.")
}
