// Package gorder is a Go implementation of "Speedup Graph Processing
// by Graph Ordering" (Wei, Yu, Lu, Lin — SIGMOD 2016): cache-aware
// vertex reordering for graph algorithms.
//
// The package renumbers the vertices of a directed graph so that
// vertices accessed together get nearby IDs — and therefore share
// cache lines — which speeds up unmodified graph algorithms by 10-50%
// in the paper's experiments. The flagship ordering is Gorder
// (Order / OrderWithOptions); nine classic baselines from the paper's
// evaluation are included, along with the paper's nine benchmark
// kernels, synthetic dataset generators, and a cache-hierarchy
// simulator for reproducing the paper's cache statistics.
//
// Quick start:
//
//	g := gorder.NewWebGraph(100_000, 7)       // or gorder.ReadEdgeList(file)
//	perm := gorder.Order(g)                   // Gorder permutation
//	fast := gorder.Apply(g, perm)             // relabeled graph
//	ranks := gorder.PageRank(fast, 100, 0.85) // now cache-friendly
//
// The subpackages under internal/ hold the implementation; everything
// a downstream user needs is re-exported here. See DESIGN.md for the
// architecture and EXPERIMENTS.md for the reproduced evaluation.
package gorder

import (
	"io"

	"gorder/internal/graph"
	"gorder/internal/order"
)

// Graph is a directed graph in Compressed Sparse Row form with both
// out- and in-adjacency. Construct one with FromEdges, a generator
// (NewSocialGraph, NewWebGraph, ...), or a reader (ReadEdgeList,
// ReadBinary).
type Graph = graph.Graph

// Edge is a directed edge used when building a Graph.
type Edge = graph.Edge

// NodeID identifies a vertex (dense integers 0..N-1).
type NodeID = graph.NodeID

// Permutation maps old vertex IDs to new ones: perm[u] is the new ID
// of u. Every ordering in this package returns one; Apply relabels a
// graph with it.
type Permutation = order.Permutation

// Stats summarises a graph (sizes, degree extremes); see ComputeStats.
type Stats = graph.Stats

// FromEdges builds a graph with n vertices from a directed edge list,
// keeping parallel edges.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// FromEdgesDedup builds a graph with n vertices, collapsing duplicate
// edges.
func FromEdgesDedup(n int, edges []Edge) *Graph { return graph.FromEdgesDedup(n, edges) }

// ReadEdgeList parses a whitespace-separated text edge list ("u v"
// per line, # or % comments) — the format SNAP and Konect datasets
// use. Parsing and CSR construction run on GOMAXPROCS workers for
// large inputs; see SetIngestParallelism.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// ReadEdgeListBytes parses a text edge list already held in memory,
// skipping the reader copy.
func ReadEdgeListBytes(data []byte) (*Graph, error) { return graph.ReadEdgeListBytes(data) }

// ReadBinary loads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// ReadBinaryBytes loads a binary graph already held in memory.
func ReadBinaryBytes(data []byte) (*Graph, error) { return graph.ReadBinaryBytes(data) }

// SetIngestParallelism sets the worker count the graph loaders and
// builders use: 0 restores the default (GOMAXPROCS, small inputs
// serial), 1 forces the serial path, k > 1 forces exactly k workers.
func SetIngestParallelism(k int) { graph.SetIngestParallelism(k) }

// EditStats summarises what an ApplyEdits call actually changed.
type EditStats = graph.EditStats

// ApplyEdits derives a new graph from g by appending addNodes fresh
// vertices and applying a batch of edge deletions then insertions —
// the mutation primitive behind gorderd's POST /graphs/{name}/edges.
// g is unchanged; versioned stores keep both. Deletes run before
// adds, duplicate requests collapse, and already-satisfied requests
// are counted rather than failed, so batches replay idempotently.
func ApplyEdits(g *Graph, addNodes int, add, del []Edge) (*Graph, EditStats, error) {
	return graph.ApplyEdits(g, addNodes, add, del)
}

// Apply relabels g under perm: vertex u becomes perm[u]. It panics if
// perm is not a permutation of g's vertices.
func Apply(g *Graph, perm Permutation) *Graph { return g.Relabel(perm) }

// ComputeStats scans g once and returns its summary statistics.
func ComputeStats(g *Graph) Stats { return graph.ComputeStats(g) }

// ReadPermutation parses a permutation file (one new ID per line,
// line number = old ID — the format Permutation.WriteTo produces and
// the original Gorder release exchanges) and validates it.
func ReadPermutation(r io.Reader) (Permutation, error) { return order.ReadPermutation(r) }
