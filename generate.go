package gorder

import "gorder/internal/gen"

// Synthetic dataset generators, the stand-ins for the paper's
// real-world datasets (see DESIGN.md §4). All are deterministic in
// their seed.

// NewSocialGraph grows a directed preferential-attachment (Barabási–
// Albert) graph with n vertices and about k out-links per vertex —
// the heavy-tailed structure of the paper's social datasets.
func NewSocialGraph(n int, seed uint64) *Graph {
	return gen.BarabasiAlbert(n, 8, seed)
}

// NewWebGraph generates a copying-model web graph of n pages whose
// original numbering already has crawl locality, like the paper's web
// datasets.
func NewWebGraph(n int, seed uint64) *Graph {
	return gen.Web(n, gen.DefaultWeb, seed)
}

// NewRMATGraph generates an R-MAT power-law graph with 2^scale
// vertices and about edgeFactor·2^scale edges (Graph500 parameters).
func NewRMATGraph(scale, edgeFactor int, seed uint64) *Graph {
	return gen.RMAT(scale, edgeFactor, gen.DefaultRMAT, seed)
}

// NewCommunityGraph generates a stochastic-block-model graph with the
// given number of communities and expected in/cross-community degrees.
func NewCommunityGraph(n, communities int, degIn, degOut float64, seed uint64) *Graph {
	return gen.SBM(n, communities, degIn, degOut, seed)
}

// NewUniformGraph generates a directed Erdős–Rényi G(n, m) graph.
func NewUniformGraph(n, m int, seed uint64) *Graph {
	return gen.ErdosRenyi(n, m, seed)
}

// NewGridGraph returns a rows×cols bidirectional mesh, handy for
// experimenting with bandwidth-reducing orderings.
func NewGridGraph(rows, cols int) *Graph { return gen.Grid(rows, cols) }

// NewSmallWorldGraph generates a Watts–Strogatz small-world graph: a
// ring lattice with k clockwise links per vertex, each rewired to a
// random target with probability beta. beta dials the original
// order's intrinsic locality from perfect (0) to none (1).
func NewSmallWorldGraph(n, k int, beta float64, seed uint64) *Graph {
	return gen.WattsStrogatz(n, k, beta, seed)
}

// NewKroneckerGraph generates a stochastic Kronecker graph with
// 2^scale vertices and about edgeFactor·2^scale edges using the
// default skew initiator.
func NewKroneckerGraph(scale, edgeFactor int, seed uint64) *Graph {
	return gen.Kronecker(scale, edgeFactor, gen.DefaultKronecker, seed)
}
